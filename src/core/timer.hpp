// Wall-clock timing utilities used by the benchmark harness and by the
// per-phase breakdowns (Figs. 10 and 14 of the paper).
#pragma once

#include <chrono>
#include <cstddef>

namespace symspmv {

/// Monotonic wall-clock stopwatch.
class Timer {
   public:
    using clock = std::chrono::steady_clock;

    Timer() : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Seconds elapsed since construction or the last reset().
    [[nodiscard]] double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

   private:
    clock::time_point start_;
};

/// Accumulates time across many start/stop intervals; one per measured phase
/// (multiplication, reduction, vector ops, preprocessing).
class PhaseTimer {
   public:
    void start() { t_.reset(); }
    void stop() {
        total_ += t_.seconds();
        ++intervals_;
    }

    [[nodiscard]] double total_seconds() const { return total_; }
    [[nodiscard]] std::size_t intervals() const { return intervals_; }

    void clear() {
        total_ = 0.0;
        intervals_ = 0;
    }

   private:
    Timer t_;
    double total_ = 0.0;
    std::size_t intervals_ = 0;
};

}  // namespace symspmv
