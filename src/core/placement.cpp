#include "core/placement.hpp"

#include <algorithm>
#include <cstring>

#include "core/error.hpp"

namespace symspmv {

void first_touch_partitioned(void* data, std::size_t elem_size, std::span<const RowRange> parts,
                             ThreadPool& pool) {
    SYMSPMV_CHECK_MSG(static_cast<int>(parts.size()) == pool.size(),
                      "first_touch_partitioned: one partition per worker required");
    auto* base = static_cast<unsigned char*>(data);
    pool.run([&](int tid) {
        const RowRange part = parts[static_cast<std::size_t>(tid)];
        const std::size_t begin = static_cast<std::size_t>(part.begin) * elem_size;
        const std::size_t end = static_cast<std::size_t>(part.end) * elem_size;
        if (end > begin) std::memset(base + begin, 0, end - begin);
    });
}

void first_touch_interleaved(void* data, std::size_t bytes, ThreadPool& pool) {
    auto* base = static_cast<unsigned char*>(data);
    const int p = pool.size();
    pool.run([&](int tid) {
        // Page k belongs to worker (k mod p); partial last page included.
        for (std::size_t offset = static_cast<std::size_t>(tid) * kPageBytes; offset < bytes;
             offset += static_cast<std::size_t>(p) * kPageBytes) {
            std::memset(base + offset, 0, std::min(kPageBytes, bytes - offset));
        }
    });
}

void rehome_partitioned(void* dst, const void* src, std::size_t elem_size,
                        std::span<const RowRange> parts, ThreadPool& pool) {
    SYMSPMV_CHECK_MSG(static_cast<int>(parts.size()) == pool.size(),
                      "rehome_partitioned: one partition per worker required");
    auto* out = static_cast<unsigned char*>(dst);
    const auto* in = static_cast<const unsigned char*>(src);
    pool.run([&](int tid) {
        const RowRange part = parts[static_cast<std::size_t>(tid)];
        const std::size_t begin = static_cast<std::size_t>(part.begin) * elem_size;
        const std::size_t end = static_cast<std::size_t>(part.end) * elem_size;
        if (end > begin) std::memcpy(out + begin, in + begin, end - begin);
    });
}

std::vector<RowRange> nnz_ranges(std::span<const index_t> rowptr,
                                 std::span<const RowRange> parts) {
    SYMSPMV_CHECK_MSG(!rowptr.empty(), "nnz_ranges: need rowptr");
    std::vector<RowRange> out(parts.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
        out[i] = {rowptr[static_cast<std::size_t>(parts[i].begin)],
                  rowptr[static_cast<std::size_t>(parts[i].end)]};
    }
    return out;
}

}  // namespace symspmv
