// Fundamental scalar and index types used across the symspmv library.
//
// The paper (Section V.A) uses 4-byte integers for indexing information and
// 8-byte IEEE-754 doubles for non-zero values; we adopt the same defaults so
// the size formulas (Eqs. 1-2) hold verbatim:
//   S_CSR = 12*NNZ + 4*(N+1)
//   S_SSS = 6*(NNZ + N) + 4
#pragma once

#include <cstddef>
#include <cstdint>

namespace symspmv {

/// Row/column index type (paper: four-byte indices).
using index_t = std::int32_t;

/// Non-zero value type (paper: double-precision floating point).
using value_t = double;

/// Size in bytes of one stored index.
inline constexpr std::size_t kIndexBytes = sizeof(index_t);

/// Size in bytes of one stored non-zero value.
inline constexpr std::size_t kValueBytes = sizeof(value_t);

/// A single (row, column, value) triplet; the canonical element exchanged
/// between formats and produced by the generators and the Matrix Market
/// reader.
struct Triplet {
    index_t row;
    index_t col;
    value_t val;

    friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Row-major coordinate ordering used to canonicalize COO matrices.
inline constexpr bool triplet_rowmajor_less(const Triplet& a, const Triplet& b) {
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
}

}  // namespace symspmv
