// Poisonable thread barrier.
//
// std::barrier has no error path: when one worker of a fork-join job dies
// before arriving, every peer already waiting in arrive_and_wait() blocks
// forever.  The thread pool's jobs synchronize their multiply and reduction
// phases through an in-job barrier, so a throwing kernel phase used to turn
// into a process-wide hang instead of a rethrown exception.  This barrier
// adds the missing path: poison() wakes every current and future waiter by
// throwing Poisoned out of arrive_and_wait(), which unwinds the job on each
// worker; reset() re-arms the barrier once no thread is inside it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace symspmv {

class PoisonableBarrier {
   public:
    /// Thrown from arrive_and_wait() on every thread once the barrier is
    /// poisoned.  Deliberately not derived from std::exception: job code
    /// catching library exceptions must not be able to swallow it by type.
    struct Poisoned {};

    explicit PoisonableBarrier(int count) : count_(count < 1 ? 1 : count) {}

    PoisonableBarrier(const PoisonableBarrier&) = delete;
    PoisonableBarrier& operator=(const PoisonableBarrier&) = delete;

    /// Blocks until @p count threads have arrived in this generation, then
    /// releases them all.  Throws Poisoned instead of blocking (or waking
    /// normally) once poison() has been called in this generation.
    void arrive_and_wait() {
        std::unique_lock lock(mu_);
        if (poisoned_) throw Poisoned{};
        if (++arrived_ == count_) {
            arrived_ = 0;
            ++generation_;
            cv_.notify_all();
            return;
        }
        const std::uint64_t gen = generation_;
        cv_.wait(lock, [&] { return poisoned_ || generation_ != gen; });
        if (generation_ == gen) throw Poisoned{};  // woken by poison, not arrival
    }

    /// Marks the barrier broken and wakes every waiter.  Idempotent and safe
    /// to call from any thread, including one that never arrived.
    void poison() {
        {
            std::lock_guard lock(mu_);
            poisoned_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] bool poisoned() const {
        std::lock_guard lock(mu_);
        return poisoned_;
    }

    /// Re-arms a poisoned barrier.  The caller must guarantee that no thread
    /// is inside arrive_and_wait() (the pool calls this after every worker
    /// has finished the failed job round).
    void reset() {
        std::lock_guard lock(mu_);
        poisoned_ = false;
        arrived_ = 0;
    }

   private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    int count_;
    int arrived_ = 0;
    std::uint64_t generation_ = 0;
    bool poisoned_ = false;
};

}  // namespace symspmv
