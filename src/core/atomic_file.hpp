// Atomic file replacement: write the new contents to a temporary file in
// the target's directory, then rename() it over the destination.
//
// POSIX rename() is atomic within a filesystem, so readers either see the
// complete old file or the complete new file — never a torn write.  The
// binary matrix cache (matrix/binio.hpp) and the autotune plan store
// (autotune/store.hpp) both persist through this helper, so a crashed or
// killed run can never leave a half-written .smx or .plan file behind.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace symspmv {

/// Writes @p path atomically: opens a sibling temporary file, invokes
/// @p writer on its stream, flushes, and renames it onto @p path.  On any
/// failure (open, writer exception, bad stream, rename) the temporary file
/// is removed and the error is rethrown; the destination is left untouched.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace symspmv
