#include "core/thread_pool.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include "core/error.hpp"

namespace symspmv {

namespace {

/// Binds the calling thread to logical CPU @p cpu; returns whether the bind
/// took effect.  No-op outside Linux.
bool pin_to_cpu(int cpu) {
#ifdef __linux__
    if (cpu < 0) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<std::size_t>(cpu), &set);
    return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

/// The naive compatibility map: worker i -> CPU i modulo the CPU count.
std::vector<int> modulo_pin_map(int threads) {
#ifdef __linux__
    const long cpus = ::sysconf(_SC_NPROCESSORS_ONLN);
    if (cpus <= 0) return {};
    std::vector<int> map(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) map[static_cast<std::size_t>(i)] = i % static_cast<int>(cpus);
    return map;
#else
    (void)threads;
    return {};
#endif
}

std::atomic<std::uint64_t> g_pools_created{0};

}  // namespace

std::uint64_t ThreadPool::pools_created() noexcept {
    return g_pools_created.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int threads, bool pin_threads)
    : ThreadPool(threads, pin_threads ? modulo_pin_map(threads) : std::vector<int>{}) {}

ThreadPool::ThreadPool(int threads, const std::vector<int>& pin_cpus)
    : pin_cpus_(pin_cpus), barrier_(threads) {
    SYMSPMV_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
    SYMSPMV_CHECK_MSG(pin_cpus_.empty() || static_cast<int>(pin_cpus_.size()) == threads,
                      "thread pool: pin map must have one CPU per worker");
    g_pools_created.fetch_add(1, std::memory_order_relaxed);
    pinned_.assign(static_cast<std::size_t>(threads), 0);
    workers_.reserve(static_cast<std::size_t>(threads));
    const bool pin = !pin_cpus_.empty();
    for (int tid = 0; tid < threads; ++tid) {
        workers_.emplace_back([this, tid, pin] { worker_loop(tid, pin); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mu_);
        stop_ = true;
    }
    cv_job_.notify_all();
}

void ThreadPool::run(const Job& job) {
    jobs_dispatched_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lock(mu_);
    SYMSPMV_CHECK_MSG(pending_ == 0, "ThreadPool::run is not reentrant");
    job_ = &job;
    pending_ = size();
    first_error_ = nullptr;
    ++generation_;
    cv_job_.notify_all();
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (first_error_) {
        // Every worker is out of the job (pending_ == 0), so nobody can be
        // inside the barrier: safe to re-arm it for the next run().
        barrier_.reset();
        std::rethrow_exception(first_error_);
    }
}

void ThreadPool::worker_loop(int tid, bool pin) {
    if (pin) {
        pinned_[static_cast<std::size_t>(tid)] =
            pin_to_cpu(pin_cpus_[static_cast<std::size_t>(tid)]) ? 1 : 0;
    }
    std::uint64_t seen = 0;
    for (;;) {
        const Job* job = nullptr;
        {
            std::unique_lock lock(mu_);
            cv_job_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            job = job_;
        }
        try {
            (*job)(tid);
        } catch (const PoisonableBarrier::Poisoned&) {
            // A peer already died and recorded its error; this worker merely
            // unwound out of a barrier wait.
        } catch (...) {
            // Record the error BEFORE poisoning: peers woken by the poison
            // must always find first_error_ set, so run() rethrows the real
            // exception, never a bare barrier-poisoned marker.
            {
                std::lock_guard lock(mu_);
                if (!first_error_) first_error_ = std::current_exception();
            }
            // A worker that dies before an in-job barrier would strand its
            // peers there forever; poisoning unwinds them instead.
            barrier_.poison();
        }
        {
            std::lock_guard lock(mu_);
            if (--pending_ == 0) cv_done_.notify_all();
        }
    }
}

}  // namespace symspmv
