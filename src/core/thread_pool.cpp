#include "core/thread_pool.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include <utility>

#include "core/error.hpp"
#include "core/topology.hpp"

namespace symspmv {

namespace {

/// Binds the calling thread to logical CPU @p cpu; returns whether the bind
/// took effect.  No-op outside Linux.
bool pin_to_cpu(int cpu) {
#ifdef __linux__
    if (cpu < 0) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<std::size_t>(cpu), &set);
    return ::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

std::atomic<std::uint64_t> g_pools_created{0};

}  // namespace

std::uint64_t ThreadPool::pools_created() noexcept {
    return g_pools_created.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int threads, bool pin_threads)
    // The legacy bool constructor routes through the topology layer's
    // compact strategy instead of the old naive modulo map, so no caller
    // gets pre-topology pinning (hyper-thread siblings before real cores).
    : ThreadPool(threads, pin_threads ? pin_map(local_topology(), threads, PinStrategy::kCompact)
                                      : std::vector<int>{}) {}

ThreadPool::ThreadPool(int threads, const std::vector<int>& pin_cpus)
    : pin_cpus_(pin_cpus),
      barrier_(threads),
      dispatch_spin_(default_spin_budget(threads + 1)) {
    SYMSPMV_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
    SYMSPMV_CHECK_MSG(pin_cpus_.empty() || static_cast<int>(pin_cpus_.size()) == threads,
                      "thread pool: pin map must have one CPU per worker");
    g_pools_created.fetch_add(1, std::memory_order_relaxed);
    pinned_.assign(static_cast<std::size_t>(threads), 0);
    workers_.reserve(static_cast<std::size_t>(threads));
    const bool pin = !pin_cpus_.empty();
    for (int tid = 0; tid < threads; ++tid) {
        workers_.emplace_back([this, tid, pin] { worker_loop(tid, pin); });
    }
}

ThreadPool::~ThreadPool() {
    stop_.store(true, std::memory_order_release);
    job_word_.fetch_add(1, std::memory_order_release);
    job_word_.notify_all();
}

void ThreadPool::run(const Job& job) {
    SYMSPMV_CHECK_MSG(active_.load(std::memory_order_acquire) == 0,
                      "ThreadPool::run is not reentrant");
    job_ = &job;
    iter_job_ = nullptr;
    iterations_ = 0;
    dispatch_and_wait();
}

void ThreadPool::run_many(int iterations, const IterJob& job) {
    SYMSPMV_CHECK_MSG(iterations >= 0, "ThreadPool::run_many: negative iteration count");
    if (iterations == 0) return;
    SYMSPMV_CHECK_MSG(active_.load(std::memory_order_acquire) == 0,
                      "ThreadPool::run_many is not reentrant");
    job_ = nullptr;
    iter_job_ = &job;
    iterations_ = iterations;
    dispatch_and_wait();
}

void ThreadPool::dispatch_and_wait() {
    jobs_dispatched_.fetch_add(1, std::memory_order_relaxed);
    first_error_ = nullptr;  // no region active: workers cannot touch it
    const std::uint32_t done = done_word_.load(std::memory_order_acquire);
    active_.store(size(), std::memory_order_relaxed);
    job_word_.fetch_add(1, std::memory_order_release);
    job_word_.notify_all();
    spin_then_wait(done_word_, done, dispatch_spin_);
    job_ = nullptr;
    iter_job_ = nullptr;
    iterations_ = 0;
    if (first_error_) {
        // Every worker is out of the job (done_word_ advanced), so nobody
        // can be inside the barrier: safe to re-arm it for the next run().
        barrier_.reset();
        std::rethrow_exception(std::exchange(first_error_, nullptr));
    }
}

void ThreadPool::worker_loop(int tid, bool pin) {
    if (pin) {
        pinned_[static_cast<std::size_t>(tid)] =
            pin_to_cpu(pin_cpus_[static_cast<std::size_t>(tid)]) ? 1 : 0;
    }
    std::uint32_t seen = 0;
    for (;;) {
        spin_then_wait(job_word_, seen, dispatch_spin_);
        seen = job_word_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire)) return;
        try {
            if (iter_job_ != nullptr) {
                const IterJob& job = *iter_job_;
                const int iterations = iterations_;
                for (int i = 0; i < iterations; ++i) job(tid, i);
            } else {
                (*job_)(tid);
            }
        } catch (const SpinBarrier::Poisoned&) {
            // A peer already died and recorded its error; this worker merely
            // unwound out of a barrier wait.
        } catch (...) {
            // Record the error BEFORE poisoning: peers woken by the poison
            // must always find first_error_ set, so run() rethrows the real
            // exception, never a bare barrier-poisoned marker.
            {
                std::lock_guard lock(err_mu_);
                if (!first_error_) first_error_ = std::current_exception();
            }
            // A worker that dies before an in-job barrier would strand its
            // peers there forever; poisoning unwinds them instead.
            barrier_.poison();
        }
        if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            done_word_.fetch_add(1, std::memory_order_release);
            done_word_.notify_all();
        }
    }
}

}  // namespace symspmv
