// Per-thread, per-phase wall-clock profiling for the two-phase SpM×V
// execution model (multiply / reduce / barrier wait).
//
// The paper's Fig. 9/10 analysis hinges on where each *thread* spends its
// time, not just the aggregate split: the reduction methods differ exactly
// in how evenly the reduction work is distributed and how long the fast
// threads idle at the phase barrier.  SpmvPhases (spmv/kernel.hpp) keeps the
// scalar per-call split; PhaseProfiler generalizes it to a per-thread
// accumulator that any kernel records into when attached via
// SpmvKernel::set_profiler, and exposes imbalance statistics
// (max/mean - 1, the classical load-imbalance metric).
//
// Recording is wait-free: each worker writes only its own cache-line-padded
// slot, so attaching a profiler does not perturb the measured kernel.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace symspmv {

/// The phases of one SpM×V operation a thread can spend time in.
enum class Phase {
    kMultiply = 0,   // own-partition multiplication
    kBarrier = 1,    // waiting on the multiply->reduce barrier
    kReduction = 2,  // combining local vectors into y
};

inline constexpr int kPhaseCount = 3;

[[nodiscard]] std::string_view to_string(Phase phase);

/// Observer of individual phase intervals, called synchronously from
/// PhaseProfiler::record() as each interval ends.  This is the seam the
/// observability layer's trace writer (obs/trace.hpp, SYMSPMV_TRACE=1)
/// hangs off: the profiler keeps the wait-free per-thread accumulators, the
/// sink sees every (tid, phase, duration) event with end-time "now".
/// Implementations must be thread-safe — concurrent workers call in.
class PhaseTraceSink {
   public:
    virtual ~PhaseTraceSink() = default;

    /// Worker @p tid spent @p seconds in @p phase, ending approximately at
    /// the time of this call.
    virtual void phase_recorded(int tid, Phase phase, double seconds) = 0;
};

/// Cross-thread summary of one phase (seconds accumulated per thread over
/// all recorded operations).
struct PhaseStats {
    double min_seconds = 0.0;    // fastest thread's accumulated time
    double max_seconds = 0.0;    // slowest thread's accumulated time
    double mean_seconds = 0.0;   // mean over threads
    double total_seconds = 0.0;  // sum over threads (CPU seconds)
    double imbalance = 0.0;      // max/mean - 1; 0 = perfectly balanced
    std::size_t samples = 0;     // record() calls that fed this phase
};

/// Accumulates per-thread wall-clock by phase.  One instance profiles one
/// kernel (or solver run) at a time; reset() rearms it for the next
/// measurement window.  Thread tid must only be written from worker tid.
class PhaseProfiler {
   public:
    /// @p threads fixes the slot count; record() with tid outside
    /// [0, threads) is ignored (a kernel may run on fewer workers).
    explicit PhaseProfiler(int threads);

    [[nodiscard]] int threads() const { return static_cast<int>(slots_.size()); }

    /// Adds @p seconds to (tid, phase).  Wait-free; no cross-thread writes.
    void record(int tid, Phase phase, double seconds);

    /// Marks the start of one profiled operation (bumps ops()).  Called by
    /// the measuring loop, not by kernels.
    void begin_op() { ++ops_; }

    /// Profiled operations since construction or reset().
    [[nodiscard]] std::size_t ops() const { return ops_; }

    /// Accumulated seconds of @p phase on worker @p tid.
    [[nodiscard]] double seconds(int tid, Phase phase) const;

    /// Summary over threads for @p phase.  Threads that never recorded the
    /// phase still participate with 0 s (they *were* idle there).
    [[nodiscard]] PhaseStats stats(Phase phase) const;

    /// Zeroes all slots and the operation counter (the trace sink stays
    /// attached — a reset starts a new measurement window, not a new trace).
    void reset();

    /// Attaches a per-interval observer (nullptr detaches).  The sink must
    /// outlive the attachment; record() forwards every interval to it, so
    /// only attach one while tracing — the accumulators themselves stay
    /// wait-free either way.
    void set_trace_sink(PhaseTraceSink* sink) { trace_ = sink; }

    [[nodiscard]] PhaseTraceSink* trace_sink() const { return trace_; }

   private:
    // One cache line per worker so concurrent record() calls never share.
    struct alignas(64) Slot {
        double seconds[kPhaseCount] = {0.0, 0.0, 0.0};
        std::size_t samples[kPhaseCount] = {0, 0, 0};
    };

    std::vector<Slot> slots_;
    std::size_t ops_ = 0;
    PhaseTraceSink* trace_ = nullptr;
};

}  // namespace symspmv
