#include "core/options.hpp"

#include <cstdlib>

#include "core/error.hpp"

namespace symspmv {
namespace {

std::string_view strip_dashes(std::string_view s) {
    while (!s.empty() && s.front() == '-') s.remove_prefix(1);
    return s;
}

bool looks_like_flag(std::string_view s) { return s.size() >= 3 && s.substr(0, 2) == "--"; }

}  // namespace

Options::Options(int argc, const char* const* argv) {
    if (argc > 0) program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        if (!looks_like_flag(arg)) {
            positional_.emplace_back(arg);
            continue;
        }
        Flag flag;
        const auto eq = arg.find('=');
        if (eq != std::string_view::npos) {
            flag.name = std::string(strip_dashes(arg.substr(0, eq)));
            flag.value = std::string(arg.substr(eq + 1));
        } else {
            flag.name = std::string(strip_dashes(arg));
            // Consume a following token as the value unless it is a flag.
            if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
                flag.value = std::string(argv[i + 1]);
                ++i;
            }
        }
        flags_.push_back(std::move(flag));
    }
}

bool Options::has(std::string_view name) const {
    const auto stripped = strip_dashes(name);
    for (const auto& f : flags_) {
        if (f.name == stripped) return true;
    }
    return false;
}

std::optional<std::string> Options::get(std::string_view name) const {
    const auto stripped = strip_dashes(name);
    for (const auto& f : flags_) {
        if (f.name == stripped) return f.value;
    }
    return std::nullopt;
}

long Options::get_int(std::string_view name, long fallback) const {
    const auto v = get(name);
    if (!v || v->empty()) return fallback;
    char* end = nullptr;
    const long parsed = std::strtol(v->c_str(), &end, 10);
    SYMSPMV_CHECK_MSG(end && *end == '\0', "option value is not an integer: " + *v);
    return parsed;
}

double Options::get_double(std::string_view name, double fallback) const {
    const auto v = get(name);
    if (!v || v->empty()) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    SYMSPMV_CHECK_MSG(end && *end == '\0', "option value is not a number: " + *v);
    return parsed;
}

bool Options::get_bool(std::string_view name, bool fallback) const {
    if (!has(name)) return fallback;
    const auto v = get(name);
    if (!v || v->empty()) return true;  // bare --name
    for (const char* t : {"true", "1", "yes", "on"}) {
        if (*v == t) return true;
    }
    for (const char* f : {"false", "0", "no", "off"}) {
        if (*v == f) return false;
    }
    SYMSPMV_CHECK_MSG(false, "option value is not a boolean: " + *v);
    return fallback;  // unreachable
}

std::string Options::get_string(std::string_view name, std::string_view fallback) const {
    const auto v = get(name);
    if (!v) return std::string(fallback);
    return *v;
}

}  // namespace symspmv
