// Software prefetch, compiler-portable.
//
// The SSS multiply gathers x[colind[j]] — an irregular stream the hardware
// prefetcher cannot follow, which is exactly where explicit prefetching
// helps a memory-bound kernel (Gkountouvas et al. apply the same idea to the
// compressed CSX streams).  The useful *distance* depends on the machine's
// memory latency and the kernel's per-element work, so it is a tuning knob
// (autotune plans carry it), not a constant.
#pragma once

namespace symspmv {

/// Hints the cache to load the line holding @p p for reading.  No-op on
/// compilers without __builtin_prefetch.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

}  // namespace symspmv
