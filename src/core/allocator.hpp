// Cache-line aligned allocation.
//
// SpM×V performance is dominated by streaming accesses to the format arrays;
// aligning them to cache-line (and small-page) boundaries avoids split loads
// and makes the per-thread partitions start on distinct lines, which matters
// for the local-vector reduction phase (false sharing on partition edges).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace symspmv {

/// Alignment used for all bulk arrays (one x86 cache line).
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal aligned allocator compatible with std::vector.
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
   public:
    using value_type = T;
    static constexpr std::align_val_t kAlign{Alignment};

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

    [[nodiscard]] T* allocate(std::size_t n) {
        if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
        return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
    }

    void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

    template <typename U>
    struct rebind {
        using other = AlignedAllocator<U, Alignment>;
    };

    friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) { return true; }
    friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) { return false; }
};

/// Vector whose storage starts on a cache-line boundary.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace symspmv
