// Length-prefixed, checksummed wire frames.
//
// The serve subsystem speaks a binary protocol over stream sockets; this is
// its transport atom, kept in core (like atomic_file and hash) so the
// verification layer can fuzz it without depending on serve.  A frame is
//
//   "SFR1"  u16 version  u16 type  u32 payload_size  payload  u64 checksum
//
// little-endian throughout, with the FNV-1a checksum covering every byte
// between the magic and the checksum itself — the same integrity discipline
// as the SMX2 matrix cache (matrix/binio.cpp): truncation, bit flips and
// garbage all surface as ParseError, never as a silently different payload.
// The length prefix is validated against a caller-supplied ceiling *before*
// any allocation, so an adversarial 4 GiB length field is a cheap clean
// reject rather than an OOM or a multi-gigabyte read stall.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace symspmv {

struct Frame {
    std::uint16_t type = 0;
    std::string payload;

    friend bool operator==(const Frame&, const Frame&) = default;
};

inline constexpr char kFrameMagic[4] = {'S', 'F', 'R', '1'};
inline constexpr std::uint16_t kFrameVersion = 1;

/// Default payload ceiling (64 MiB) — large enough for a full-scale matrix
/// upload, small enough that a hostile length prefix cannot balloon memory.
inline constexpr std::size_t kDefaultMaxFramePayload = 64u << 20;

/// Writes one frame to @p out (does not flush).
void write_frame(std::ostream& out, const Frame& frame);

/// The frame as a byte string — the fuzz-harness and test entry point.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Reads one frame.  Returns nullopt on a clean end-of-stream *before the
/// first byte* of a frame (the peer closed between messages); throws
/// ParseError on anything else: bad magic, unknown version, a length prefix
/// above @p max_payload, truncation mid-frame, or a checksum mismatch.
[[nodiscard]] std::optional<Frame> read_frame(std::istream& in,
                                              std::size_t max_payload = kDefaultMaxFramePayload);

}  // namespace symspmv
