// Length-prefixed, checksummed wire frames.
//
// The serve subsystem speaks a binary protocol over stream sockets; this is
// its transport atom, kept in core (like atomic_file and hash) so the
// verification layer can fuzz it without depending on serve.  A version-2
// frame is
//
//   "SFR1"  u16 version  u16 type  u64 trace_id  u32 payload_size  payload
//   u64 checksum
//
// little-endian throughout, with the FNV-1a checksum covering every byte
// between the magic and the checksum itself — the same integrity discipline
// as the SMX2 matrix cache (matrix/binio.cpp): truncation, bit flips and
// garbage all surface as ParseError, never as a silently different payload.
// The length prefix is validated against a caller-supplied ceiling *before*
// any allocation, so an adversarial 4 GiB length field is a cheap clean
// reject rather than an OOM or a multi-gigabyte read stall.
//
// The trace id is the request-scoped correlation id of the tracing
// subsystem (src/obs/span.hpp): clients stamp one per request, servers echo
// it on the reply and assign one when it is absent.  Version-1 frames (no
// trace id field) are still decoded — they simply carry trace_id 0, which
// downstream layers read as "unset".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

namespace symspmv {

struct Frame {
    std::uint16_t type = 0;
    std::uint64_t trace_id = 0;  ///< Request correlation id; 0 = unset.
    std::string payload;

    friend bool operator==(const Frame&, const Frame&) = default;
};

inline constexpr char kFrameMagic[4] = {'S', 'F', 'R', '1'};
inline constexpr std::uint16_t kFrameVersion = 2;
inline constexpr std::uint16_t kFrameVersionLegacy = 1;  ///< Pre-trace-id layout.

/// Default payload ceiling (64 MiB) — large enough for a full-scale matrix
/// upload, small enough that a hostile length prefix cannot balloon memory.
inline constexpr std::size_t kDefaultMaxFramePayload = 64u << 20;

/// Writes one frame to @p out (does not flush).
void write_frame(std::ostream& out, const Frame& frame);

/// The frame as a byte string — the fuzz-harness and test entry point.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Writes @p frame in the version-1 layout (no trace id on the wire) — the
/// compatibility path old clients exercise; frame.trace_id is ignored.
void write_frame_legacy(std::ostream& out, const Frame& frame);

/// The version-1 encoding as a byte string, for compat tests and fuzzing.
[[nodiscard]] std::string encode_frame_legacy(const Frame& frame);

/// Reads one frame of either version (v1 frames decode with trace_id 0).
/// Returns nullopt on a clean end-of-stream *before the
/// first byte* of a frame (the peer closed between messages); throws
/// ParseError on anything else: bad magic, unknown version, a length prefix
/// above @p max_payload, truncation mid-frame, or a checksum mismatch.
[[nodiscard]] std::optional<Frame> read_frame(std::istream& in,
                                              std::size_t max_payload = kDefaultMaxFramePayload);

}  // namespace symspmv
