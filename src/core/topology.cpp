#include "core/topology.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <tuple>

#include "core/error.hpp"

namespace symspmv {

namespace {

namespace fs = std::filesystem;

std::optional<std::string> read_file(const fs::path& path) {
    std::ifstream in(path);
    if (!in) return std::nullopt;
    std::string content;
    std::getline(in, content);
    return content;
}

std::optional<int> parse_int(std::string_view token) {
    int value = 0;
    const char* begin = token.data();
    const char* end = begin + token.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return value;
}

std::optional<int> read_int(const fs::path& path) {
    const auto content = read_file(path);
    if (!content) return std::nullopt;
    return parse_int(*content);
}

/// Parses a sysfs cpulist ("0-3,8,10-11") into CPU ids; nullopt on garbage.
std::optional<std::vector<int>> parse_cpulist(const std::string& list) {
    std::vector<int> cpus;
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty()) continue;
        const auto dash = tok.find('-');
        if (dash == std::string::npos) {
            const auto v = parse_int(tok);
            if (!v) return std::nullopt;
            cpus.push_back(*v);
        } else {
            const auto lo = parse_int(std::string_view(tok).substr(0, dash));
            const auto hi = parse_int(std::string_view(tok).substr(dash + 1));
            if (!lo || !hi || *hi < *lo) return std::nullopt;
            for (int c = *lo; c <= *hi; ++c) cpus.push_back(c);
        }
    }
    return cpus;
}

/// Parses a sysfs cache size ("32K", "8192K", "12M"); nullopt on garbage.
std::optional<std::size_t> parse_cache_size(const std::string& text) {
    if (text.empty()) return std::nullopt;
    std::size_t multiplier = 1;
    std::string_view digits = text;
    switch (text.back()) {
        case 'K':
            multiplier = 1024;
            digits.remove_suffix(1);
            break;
        case 'M':
            multiplier = 1024 * 1024;
            digits.remove_suffix(1);
            break;
        case 'G':
            multiplier = 1024ull * 1024 * 1024;
            digits.remove_suffix(1);
            break;
        default:
            break;
    }
    const auto v = parse_int(digits);
    if (!v || *v < 0) return std::nullopt;
    return static_cast<std::size_t>(*v) * multiplier;
}

void read_caches(const fs::path& cpu0, CpuTopology& topo) {
    const fs::path cache_dir = cpu0 / "cache";
    std::error_code ec;
    if (!fs::is_directory(cache_dir, ec)) return;
    int max_level = 0;
    for (const auto& entry : fs::directory_iterator(cache_dir, ec)) {
        const fs::path dir = entry.path();
        if (dir.filename().string().rfind("index", 0) != 0) continue;
        const auto level = read_int(dir / "level");
        const auto type = read_file(dir / "type");
        const auto size_text = read_file(dir / "size");
        if (!level || !type || !size_text) continue;
        const auto size = parse_cache_size(*size_text);
        if (!size) continue;
        if (*level == 1 && *type == "Data") topo.l1d_bytes = *size;
        if (*level == 2 && *type != "Instruction") topo.l2_bytes = *size;
        if (*level >= max_level && *type != "Instruction") {
            max_level = *level;
            topo.llc_bytes = *size;
        }
    }
}

int fallback_cpu_count() {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    return hw > 0 ? hw : 1;
}

}  // namespace

int CpuTopology::physical_cores() const {
    int cores = 0;
    for (const Cpu& c : cpus) {
        if (c.smt_rank == 0) ++cores;
    }
    return cores;
}

std::string CpuTopology::summary() const {
    std::ostringstream os;
    os << sockets << "s/" << nodes << "n/" << physical_cores() << "c/" << smt << "t";
    return os.str();
}

CpuTopology flat_topology(int logical_cpus) {
    SYMSPMV_CHECK_MSG(logical_cpus >= 1, "flat_topology: need at least one CPU");
    CpuTopology topo;
    topo.cpus.reserve(static_cast<std::size_t>(logical_cpus));
    for (int i = 0; i < logical_cpus; ++i) {
        topo.cpus.push_back({.id = i, .core = i, .socket = 0, .node = 0, .smt_rank = 0});
    }
    return topo;
}

CpuTopology fake_topology(int sockets, int cores_per_socket, int smt) {
    SYMSPMV_CHECK_MSG(sockets >= 1 && cores_per_socket >= 1 && smt >= 1,
                      "fake_topology: all dimensions must be >= 1");
    CpuTopology topo;
    topo.sockets = sockets;
    topo.nodes = sockets;
    topo.smt = smt;
    topo.from_sysfs = true;  // behaves like a discovered hierarchy
    // Logical CPU ids mimic Linux enumeration: all first siblings across the
    // machine, then the second siblings, and so on.
    int id = 0;
    for (int rank = 0; rank < smt; ++rank) {
        for (int s = 0; s < sockets; ++s) {
            for (int c = 0; c < cores_per_socket; ++c) {
                topo.cpus.push_back(
                    {.id = id++, .core = c, .socket = s, .node = s, .smt_rank = rank});
            }
        }
    }
    std::sort(topo.cpus.begin(), topo.cpus.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    return topo;
}

CpuTopology discover_topology(const std::string& sysfs_root) {
    const fs::path cpu_root = fs::path(sysfs_root) / "devices/system/cpu";
    std::error_code ec;

    // Pass 1: logical CPUs and their (socket, core).
    std::vector<CpuTopology::Cpu> cpus;
    if (fs::is_directory(cpu_root, ec)) {
        for (const auto& entry : fs::directory_iterator(cpu_root, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("cpu", 0) != 0) continue;
            const auto id = parse_int(std::string_view(name).substr(3));
            if (!id) continue;  // cpufreq, cpuidle, ...
            const auto socket = read_int(entry.path() / "topology/physical_package_id");
            const auto core = read_int(entry.path() / "topology/core_id");
            if (!socket || !core) continue;  // offline CPU: no topology dir
            cpus.push_back({.id = *id, .core = *core, .socket = *socket, .node = 0});
        }
    }
    if (cpus.empty()) return flat_topology(fallback_cpu_count());

    std::sort(cpus.begin(), cpus.end(), [](const auto& a, const auto& b) { return a.id < b.id; });

    // Pass 2: NUMA nodes (optional — single-node trees often omit them).
    const fs::path node_root = fs::path(sysfs_root) / "devices/system/node";
    std::map<int, int> node_of_cpu;
    int nodes_seen = 0;
    if (fs::is_directory(node_root, ec)) {
        for (const auto& entry : fs::directory_iterator(node_root, ec)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("node", 0) != 0) continue;
            const auto node = parse_int(std::string_view(name).substr(4));
            if (!node) continue;
            const auto list = read_file(entry.path() / "cpulist");
            if (!list) continue;
            const auto members = parse_cpulist(*list);
            if (!members) continue;
            ++nodes_seen;
            for (int cpu : *members) node_of_cpu[cpu] = *node;
        }
    }

    CpuTopology topo;
    topo.from_sysfs = true;
    std::map<std::pair<int, int>, int> siblings_seen;  // (socket, core) -> count
    std::map<int, bool> sockets_seen;
    std::map<int, bool> nodes_present;
    for (CpuTopology::Cpu cpu : cpus) {
        if (const auto it = node_of_cpu.find(cpu.id); it != node_of_cpu.end()) {
            cpu.node = it->second;
        }
        cpu.smt_rank = siblings_seen[{cpu.socket, cpu.core}]++;
        sockets_seen[cpu.socket] = true;
        nodes_present[cpu.node] = true;
        topo.cpus.push_back(cpu);
    }
    topo.sockets = static_cast<int>(sockets_seen.size());
    topo.nodes = nodes_seen > 0 ? static_cast<int>(nodes_present.size()) : 1;
    topo.smt = 1;
    for (const auto& [key, count] : siblings_seen) topo.smt = std::max(topo.smt, count);

    read_caches(cpu_root / "cpu0", topo);
    return topo;
}

const CpuTopology& local_topology() {
    static const CpuTopology topo = discover_topology();
    return topo;
}

std::string_view to_string(PinStrategy strategy) {
    switch (strategy) {
        case PinStrategy::kNone:
            return "none";
        case PinStrategy::kCompact:
            return "compact";
        case PinStrategy::kScatter:
            return "scatter";
        case PinStrategy::kPerSocket:
            return "per-socket";
    }
    return "?";
}

PinStrategy parse_pin_strategy(std::string_view name) {
    for (PinStrategy s : {PinStrategy::kNone, PinStrategy::kCompact, PinStrategy::kScatter,
                          PinStrategy::kPerSocket}) {
        if (to_string(s) == name) return s;
    }
    throw InvalidArgument("unknown pin strategy: " + std::string(name));
}

std::vector<int> pin_map(const CpuTopology& topo, int threads, PinStrategy strategy) {
    SYMSPMV_CHECK_MSG(threads >= 1, "pin_map: need at least one thread");
    if (strategy == PinStrategy::kNone) return {};
    SYMSPMV_CHECK_MSG(!topo.cpus.empty(), "pin_map: topology has no CPUs");

    // Order the logical CPUs by strategy; the map wraps this order.
    std::vector<CpuTopology::Cpu> order = topo.cpus;
    switch (strategy) {
        case PinStrategy::kCompact:
        case PinStrategy::kPerSocket:
            // Fill every physical core of a socket before its SMT siblings,
            // and a whole socket before the next one.  (kPerSocket shares
            // this order; it differs in how *partitions* group workers, see
            // socket_of_workers + PartitionPolicy::kBySocket.)
            std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
                return std::tuple(a.socket, a.smt_rank, a.core, a.id) <
                       std::tuple(b.socket, b.smt_rank, b.core, b.id);
            });
            break;
        case PinStrategy::kScatter:
            // Round-robin across sockets: physical cores of all sockets
            // first (socket-major interleave), SMT siblings last.
            std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
                return std::tuple(a.smt_rank, a.core, a.socket, a.id) <
                       std::tuple(b.smt_rank, b.core, b.socket, b.id);
            });
            break;
        case PinStrategy::kNone:
            break;
    }

    const int cpus = topo.logical_cpus();
    if (threads > cpus) {
        // Warn once per process: oversubscription is sometimes intentional
        // (the paper's p=16 sweep on an 8-CPU machine), but the old "bind
        // worker i to CPU i" silently bound workers to phantom CPUs, which
        // the kernel rejects, leaving them floating while their peers are
        // pinned — the 113.8% imbalance rows of BENCH_symspmv.md.
        static std::once_flag warned;
        std::call_once(warned, [&] {
            std::cerr << "symspmv: " << threads << " workers requested but only " << cpus
                      << " logical CPUs online; pin map wraps around (workers will share "
                         "CPUs)\n";
        });
    }
    std::vector<int> map(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i) {
        map[static_cast<std::size_t>(i)] = order[static_cast<std::size_t>(i % cpus)].id;
    }
    return map;
}

std::vector<int> socket_of_workers(const CpuTopology& topo, const std::vector<int>& map,
                                   int threads) {
    std::vector<int> sockets(static_cast<std::size_t>(threads), 0);
    if (map.empty()) return sockets;
    std::map<int, int> socket_of_cpu;
    for (const CpuTopology::Cpu& c : topo.cpus) socket_of_cpu[c.id] = c.socket;
    for (int i = 0; i < threads && i < static_cast<int>(map.size()); ++i) {
        if (const auto it = socket_of_cpu.find(map[static_cast<std::size_t>(i)]);
            it != socket_of_cpu.end()) {
            sockets[static_cast<std::size_t>(i)] = it->second;
        }
    }
    return sockets;
}

}  // namespace symspmv
