// Format explorer: load a Matrix Market file (or generate a suite analog)
// and report its structural properties, the size of every storage format,
// and the substructures CSX-Sym detected in it.
//
//   ./examples/format_explorer path/to/matrix.mtx [--threads 4]
//   ./examples/format_explorer --suite bmw7st_1 [--scale 0.01]
#include <iostream>

#include "core/options.hpp"
#include "csx/csx_matrix.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/csr.hpp"
#include "matrix/mmio.hpp"
#include "matrix/properties.hpp"
#include "matrix/sss.hpp"
#include "matrix/suite.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    const int threads = static_cast<int>(opts.get_int("--threads", 4));

    Coo matrix;
    if (!opts.positional().empty()) {
        matrix = read_matrix_market_file(opts.positional().front());
        std::cout << "loaded " << opts.positional().front() << '\n';
    } else {
        const std::string name = opts.get_string("--suite", "bmw7st_1");
        const double scale = opts.get_double("--scale", 0.01);
        matrix = gen::generate_suite_matrix(name, scale);
        std::cout << "generated suite analog '" << name << "' at scale " << scale << '\n';
    }

    const MatrixProperties p = analyze(matrix);
    std::cout << "\nstructure:\n"
              << "  rows            " << p.rows << '\n'
              << "  non-zeros       " << p.nnz << '\n'
              << "  nnz/row         " << p.nnz_per_row << '\n'
              << "  bandwidth       " << p.bandwidth << " (avg " << p.avg_bandwidth << ")\n"
              << "  symmetric       " << (p.numerically_symmetric ? "yes" : "no") << '\n';

    const Csr csr(matrix);
    std::cout << "\nformat sizes (bytes, lower is better):\n"
              << "  CSR       " << csr.size_bytes() << '\n';
    const csx::CsxConfig cfg;
    const csx::CsxMatrix csx_m(csr, cfg, threads);
    std::cout << "  CSX       " << csx_m.size_bytes() << '\n';
    if (p.numerically_symmetric) {
        const Sss sss(matrix);
        const csx::CsxSymMatrix csxsym(sss, cfg, threads);
        std::cout << "  SSS       " << sss.size_bytes() << '\n'
                  << "  CSX-Sym   " << csxsym.size_bytes() << '\n';
        std::cout << "\nCSX-Sym substructures (elements encoded per pattern):\n";
        for (const auto& [pattern, count] : csxsym.coverage()) {
            std::cout << "  " << csx::to_string(pattern) << "  " << count << '\n';
        }
    } else {
        std::cout << "\n(matrix is not symmetric: SSS/CSX-Sym skipped)\n";
        std::cout << "\nCSX substructures (elements encoded per pattern):\n";
        for (const auto& [pattern, count] : csx_m.coverage()) {
            std::cout << "  " << csx::to_string(pattern) << "  " << count << '\n';
        }
    }
    return 0;
}
