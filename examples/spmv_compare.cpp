// spmv_compare: "which format should I use for my matrix?"
//
// Runs every kernel in the registry over a matrix (a .mtx file or a named
// suite generator) across a thread sweep, and prints Gflop/s, footprint and
// the reduction share — the practical selection table a downstream user
// wants before committing to a format.
//
//   ./examples/spmv_compare [matrix.mtx] [--suite bmw7st_1] [--scale 0.01]
//                           [--threads 1,2,4,8] [--iterations 32] [--rcm]
#include <iostream>
#include <sstream>
#include <string>

#include "bench/harness.hpp"
#include "core/options.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "matrix/csr.hpp"
#include "matrix/mmio.hpp"
#include "matrix/suite.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"

using namespace symspmv;

namespace {

std::vector<int> parse_threads(const std::string& list) {
    std::vector<int> out;
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (!tok.empty()) out.push_back(std::stoi(tok));
    }
    return out.empty() ? std::vector<int>{1, 2, 4, 8} : out;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    try {
        Coo full;
        std::string label;
        if (!opts.positional().empty()) {
            label = opts.positional().front();
            full = read_matrix_market_file(label);
        } else {
            label = opts.get_string("--suite", "bmw7st_1");
            full = gen::generate_suite_matrix(label, opts.get_double("--scale", 0.02));
        }
        if (opts.has("--rcm")) full = permute_symmetric(full, rcm_permutation(full));

        const auto threads = parse_threads(opts.get_string("--threads", ""));
        bench::MeasureOptions mopts;
        mopts.iterations = static_cast<int>(opts.get_int("--iterations", 32));

        // One bundle for the whole (kind x thread) sweep: each derived
        // representation is built from the COO exactly once.
        const engine::MatrixBundle bundle(std::move(full));
        std::cout << "matrix " << label << ": " << bundle.coo().rows() << " rows, "
                  << bundle.coo().nnz()
                  << " non-zeros, CSR = " << bundle.csr().size_bytes() / 1024 << " KiB"
                  << (opts.has("--rcm") ? ", RCM reordered" : "") << "\n\n";

        std::vector<int> widths = {12, 11, 9};
        for (std::size_t i = 0; i < threads.size(); ++i) widths.push_back(9);
        bench::TablePrinter table(std::cout, widths);
        std::vector<std::string> head = {"Kernel", "KiB", "red%"};
        for (int t : threads) head.push_back("GF@" + std::to_string(t) + "t");
        table.header(head);

        for (KernelKind kind : all_kernel_kinds()) {
            std::vector<std::string> row = {std::string(to_string(kind))};
            std::string footprint;
            std::string reduction_share = "0.0%";
            std::vector<std::string> gflops;
            for (int t : threads) {
                engine::ExecutionContext ctx(t);
                const KernelPtr kernel = engine::KernelFactory(bundle, ctx).make(kind);
                const auto meas = bench::measure(*kernel, mopts);
                gflops.push_back(bench::TablePrinter::fmt(meas.gflops, 2));
                if (t == threads.back()) {
                    footprint = std::to_string(kernel->footprint_bytes() / 1024);
                    const double total = meas.phase_totals.total();
                    if (total > 0.0) {
                        reduction_share = bench::TablePrinter::pct(
                            meas.phase_totals.reduction_seconds / total);
                    }
                }
            }
            row.push_back(footprint);
            row.push_back(reduction_share);
            row.insert(row.end(), gflops.begin(), gflops.end());
            table.row(row);
        }
        std::cout << "\nred% = share of SpMxV time spent in the local-vectors reduction at\n"
                     "the largest thread count; KiB includes reduction side structures.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
