// solve_mm: solve A x = b for a Matrix Market file with (preconditioned) CG.
//
// The downstream-user entry point: point it at any symmetric positive
// definite .mtx file, pick a storage format and a preconditioner, and get
// the solution plus the paper-style execution-time breakdown.
//
//   ./examples/solve_mm matrix.mtx [--kernel SSS-idx] [--precond none]
//                       [--threads N] [--tol 1e-8] [--max-iter 5000]
//                       [--rcm] [--rhs ones|random]
//                       [--tune] [--plan-cache DIR] [--tune-budget N]
//                       [--verify] [--record FILE] [--record-truncate]
//                       [--metrics FILE]
//
// With --tune the kernel is chosen by the autotune subsystem instead of
// --kernel: a timed search on the first run, an instant plan-cache hit on
// every later run when --plan-cache names a directory.
//
// With --verify the selected kernel is differentially checked against a
// long-double reference before solving (src/verify), and the derived CSR
// and SSS representations are run through the format invariant validators;
// any deviation aborts the solve with exit code 2.
//
// With --record FILE one RunRecord describing the solve — per-iteration
// phase breakdown, hardware counters (null when perf_event is unavailable),
// derived GFLOP/s and effective bandwidth — is appended to FILE as a JSON
// line (schema: docs/OBSERVABILITY.md); --record-truncate starts the file
// over instead of appending.  SYMSPMV_TRACE=1 additionally dumps
// preprocessing/multiply/barrier/reduction spans as Chrome trace JSON.
//
// With --metrics FILE the metrics registry — pool job/barrier totals, plan
// cache hit/miss counters, bundle build counts, and the CG per-iteration
// latency histogram with p50/p95/p99 — is exported after the solve: JSON
// when FILE ends in .json, Prometheus text exposition otherwise.
//
// Without a file argument a Poisson benchmark problem is generated, so the
// example is runnable out of the box.
#include <algorithm>
#include <iostream>
#include <optional>
#include <random>
#include <string>

#include "autotune/fingerprint.hpp"
#include "autotune/store.hpp"
#include "autotune/tuner.hpp"
#include "bench/roofline.hpp"
#include "core/atomic_file.hpp"
#include "core/options.hpp"
#include "engine/profiler.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/run_record.hpp"
#include "obs/trace.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "matrix/generators.hpp"
#include "matrix/mmio.hpp"
#include "matrix/sss.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"
#include "solver/pcg.hpp"
#include "verify/oracle.hpp"
#include "verify/validate.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    const int threads = static_cast<int>(opts.get_int("--threads", 4));
    const std::string kernel_name = opts.get_string("--kernel", "SSS-idx");
    const std::string precond_name = opts.get_string("--precond", "none");
    const double tol = opts.get_double("--tol", 1e-8);
    const int max_iter = static_cast<int>(opts.get_int("--max-iter", 5000));

    try {
        Coo full;
        if (opts.positional().empty()) {
            std::cout << "no .mtx file given; generating a 64x64 Poisson problem\n";
            full = gen::make_spd(gen::poisson2d(64, 64));
        } else {
            full = read_matrix_market_file(opts.positional().front());
        }
        if (!full.is_symmetric()) {
            std::cerr << "error: CG needs a symmetric matrix\n";
            return 1;
        }
        if (opts.has("--rcm")) {
            const auto perm = rcm_permutation(full);
            full = permute_symmetric(full, perm);
            std::cout << "applied RCM reordering\n";
        }
        std::cout << "matrix: " << full.rows() << " rows, " << full.nnz() << " non-zeros\n";

        obs::TraceWriter* trace = obs::global_trace();
        engine::ExecutionContext ctx(threads);
        const engine::MatrixBundle bundle(std::move(full));
        const engine::KernelFactory factory(bundle, ctx);

        // Live metrics: collectors scrape the pool/bundle/plan-store state
        // at export time, so the instrumented objects must outlive the
        // export at the end of the run (they all do — same scope).
        const std::string metrics_path = opts.get_string("--metrics", "");
        obs::metrics::Registry& metrics = obs::metrics::global_metrics();
        if (!metrics_path.empty()) {
            obs::metrics::register_pool_metrics(metrics, ctx.pool());
            obs::metrics::register_bundle_metrics(metrics, bundle);
        }

        KernelPtr kernel;
        std::optional<autotune::PlanStore> store;  // outlives the export
        const double prep_start = trace != nullptr ? trace->now_seconds() : 0.0;
        if (opts.get_bool("--tune", false)) {
            store.emplace(opts.get_string("--plan-cache", ""));
            if (!metrics_path.empty()) obs::metrics::register_plan_store_metrics(metrics, *store);
            autotune::TuneOptions tune_opts;
            tune_opts.max_trials = static_cast<int>(opts.get_int("--tune-budget", 0));
            autotune::Tuner tuner(*store, tune_opts);
            autotune::TuneReport report;
            kernel = factory.make_tuned(tuner, &report);
            if (report.cache_hit) {
                std::cout << "plan cache hit: " << autotune::to_string(report.plan)
                          << " (0 timed trials)\n";
            } else {
                std::cout << "tuned: " << autotune::to_string(report.plan) << " ("
                          << report.trials << " trials, " << report.tune_seconds
                          << " s; prior: " << report.prior_rationale << ")\n";
                if (store->persistent()) {
                    std::cout << "plan saved under " << store->directory() << "\n";
                }
            }
        } else {
            kernel = factory.make(parse_kernel_kind(kernel_name));
        }
        if (trace != nullptr) {
            trace->span("preprocess", "setup", obs::TraceWriter::kCallerTid, prep_start,
                        trace->now_seconds() - prep_start);
        }
        if (opts.has("--verify")) {
            std::vector<std::string> issues = verify::validate(bundle.csr());
            for (const std::string& s : verify::validate(bundle.sss())) issues.push_back(s);
            const verify::OracleResult check =
                verify::check_kernel(*kernel, bundle.coo(), "input matrix");
            if (!issues.empty() || !check.pass) {
                std::cerr << "verify FAILED for kernel " << kernel->name() << ":\n";
                for (const std::string& s : issues) std::cerr << "  " << s << "\n";
                if (!check.pass) {
                    std::cerr << "  " << (check.error.empty()
                                              ? "row " + std::to_string(check.worst_row) +
                                                    " exceeds the error bound by " +
                                                    std::to_string(check.worst_share) + "x"
                                              : check.error)
                              << "\n";
                }
                return 2;
            }
            std::cout << "verify: formats valid; " << kernel->name()
                      << " matches the reference (worst " << check.max_ulp << " ULP)\n";
        }
        const auto precond = cg::make_preconditioner(precond_name, bundle.sss(), ctx);

        std::vector<value_t> b(static_cast<std::size_t>(bundle.coo().rows()), 1.0);
        if (opts.get_string("--rhs", "ones") == "random") {
            std::mt19937_64 rng(2013);
            std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
            for (auto& v : b) v = dist(rng);
        }

        cg::Options cg_opts;
        cg_opts.tolerance = tol;
        cg_opts.max_iterations = max_iter;
        // The solver records raw per-iteration wall times (it knows nothing
        // about obs); this caller feeds them into the latency histogram.
        cg_opts.record_iteration_seconds = !metrics_path.empty();

        // Observability: per-thread phase profiling always (it is wait-free),
        // hardware counters only when the run is recorded, trace spans when
        // SYMSPMV_TRACE=1.
        const std::string record_path = opts.get_string("--record", "");
        PhaseProfiler profiler(threads);
        if (trace != nullptr) profiler.set_trace_sink(trace);
        cg_opts.profiler = &profiler;
        std::optional<obs::ThreadCounters> counters;
        if (!record_path.empty()) counters.emplace(ctx);

        const double solve_start = trace != nullptr ? trace->now_seconds() : 0.0;
        if (counters) counters->enable();
        const cg::PcgResult res = cg::pcg_solve(*kernel, *precond, ctx, b, cg_opts);
        if (counters) counters->disable();
        if (trace != nullptr) {
            trace->span("pcg-solve", "solver", obs::TraceWriter::kCallerTid, solve_start,
                        trace->now_seconds() - solve_start);
        }

        if (!record_path.empty()) {
            obs::RunRecord rec;
            rec.matrix = opts.positional().empty() ? "poisson-64x64"
                                                   : opts.positional().front();
            rec.fingerprint = autotune::to_string(autotune::fingerprint(bundle.coo()));
            rec.rows = kernel->rows();
            rec.nnz = kernel->nnz();
            rec.kernel = std::string(kernel->name());
            rec.threads = threads;
            rec.partition = std::string(engine::to_string(ctx.options().partition));
            const obs::ExecConfig exec = obs::exec_config(ctx);
            rec.placement = exec.placement;
            rec.pinning = exec.pinning;
            rec.topology = exec.topology;
            rec.oversubscribed = exec.logical_cpus > 0 && threads > exec.logical_cpus;
            rec.counters_note = counters->unavailable_reason();
            rec.iterations = res.base.iterations;
            const int iters = std::max(1, res.base.iterations);
            // Per-op here means per CG iteration: one SpM×V plus the vector
            // and preconditioner work that iteration carries.
            rec.seconds_per_op = res.total_seconds() / iters;
            rec.seconds_mean = rec.seconds_per_op;
            rec.seconds_min = rec.seconds_per_op;
            rec.seconds_max = rec.seconds_per_op;
            rec.multiply_seconds = engine::per_op_max_seconds(profiler, Phase::kMultiply);
            rec.barrier_seconds = engine::per_op_max_seconds(profiler, Phase::kBarrier);
            rec.reduction_seconds = engine::per_op_max_seconds(profiler, Phase::kReduction);
            rec.multiply_imbalance = profiler.stats(Phase::kMultiply).imbalance;
            rec.footprint_bytes = static_cast<std::int64_t>(kernel->footprint_bytes());
            rec.bytes_per_op = static_cast<std::int64_t>(bench::streamed_bytes(*kernel));
            const double spmv_per_op = (res.base.breakdown.spmv_multiply_seconds +
                                        res.base.breakdown.spmv_reduction_seconds) /
                                       iters;
            if (spmv_per_op > 0.0) {
                rec.gflops = static_cast<double>(kernel->flops()) / spmv_per_op * 1e-9;
                rec.bandwidth_gbs =
                    static_cast<double>(rec.bytes_per_op) / spmv_per_op * 1e-9;
            }
            rec.counters = counters->aggregate();
            const bool truncate = opts.get_bool("--record-truncate", false);
            obs::RunSink sink(record_path, truncate ? obs::RunSink::Mode::kTruncate
                                                    : obs::RunSink::Mode::kAppend);
            sink.write(rec);
            std::cout << "run record " << (truncate ? "written to " : "appended to ")
                      << record_path << "\n";
        }

        if (!metrics_path.empty()) {
            obs::metrics::Histogram& iter_hist = metrics.histogram(
                "symspmv_cg_iteration_seconds",
                "Wall time of each CG iteration (one SpM×V plus vector and "
                "preconditioner work)",
                {{"kernel", std::string(kernel->name())}});
            for (const double s : res.base.iteration_seconds) iter_hist.observe(s);
            const bool as_json = metrics_path.size() > 5 &&
                                 metrics_path.rfind(".json") == metrics_path.size() - 5;
            write_file_atomic(metrics_path, [&](std::ostream& out) {
                if (as_json) {
                    out << metrics.to_json().dump() << '\n';
                } else {
                    out << metrics.to_prometheus();
                }
            });
            std::cout << "metrics exported to " << metrics_path << " ("
                      << (as_json ? "JSON" : "Prometheus text") << ")\n";
        }

        std::cout << "kernel: " << kernel->name() << ", preconditioner: " << precond->name()
                  << ", threads: " << threads << "\n"
                  << (res.base.converged ? "converged" : "NOT converged") << " after "
                  << res.base.iterations << " iterations, ||r|| = " << res.base.residual_norm
                  << "\n\nexecution time breakdown (paper Fig. 14 phases):\n"
                  << "  SpMxV multiply:  " << res.base.breakdown.spmv_multiply_seconds * 1e3
                  << " ms\n"
                  << "  SpMxV reduction: " << res.base.breakdown.spmv_reduction_seconds * 1e3
                  << " ms\n"
                  << "  vector ops:      " << res.base.breakdown.vector_ops_seconds * 1e3
                  << " ms\n"
                  << "  preconditioner:  " << res.precond_seconds * 1e3 << " ms\n"
                  << "  total:           " << res.total_seconds() * 1e3 << " ms\n";
        return res.base.converged ? 0 : 3;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
