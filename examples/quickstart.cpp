// Quickstart: build a symmetric sparse matrix, multiply it with every
// kernel in the library, and print the agreement and the compression.
//
//   ./examples/quickstart [--threads N]
#include <iostream>
#include <random>

#include "core/options.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    const int threads = static_cast<int>(opts.get_int("--threads", 4));

    // 1. Generate a symmetric positive-definite matrix (a structural-FEM
    //    analog with dense 3x3 blocks; see matrix/generators.hpp for more).
    const Coo matrix = gen::block_fem(/*nodes=*/500, /*block=*/3, /*node_degree=*/8.0,
                                      /*band_fraction=*/0.05, /*seed=*/42);
    std::cout << "matrix: " << matrix.rows() << " rows, " << matrix.nnz() << " non-zeros\n";

    // 2. Make an input vector.
    std::mt19937_64 rng(1);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> x(static_cast<std::size_t>(matrix.rows()));
    for (auto& v : x) v = dist(rng);

    // 3. Run y = A*x through every kernel; all must agree with CSR.  The
    //    ExecutionContext owns the thread pool; the MatrixBundle derives
    //    each representation (CSR, SSS, ...) from the COO exactly once and
    //    the KernelFactory builds every kernel from those shared copies.
    engine::ExecutionContext ctx(threads);
    const engine::MatrixBundle bundle = engine::MatrixBundle::view(matrix);
    const engine::KernelFactory factory(bundle, ctx);
    std::vector<value_t> reference(x.size());
    bundle.csr().spmv(x, reference);

    const std::size_t csr_bytes = bundle.csr().size_bytes();
    std::cout << "CSR size: " << csr_bytes << " bytes\n\n";
    for (KernelKind kind : all_kernel_kinds()) {
        const KernelPtr kernel = factory.make(kind);
        std::vector<value_t> y(x.size());
        kernel->spmv(x, y);
        double max_err = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            max_err = std::max(max_err, std::abs(y[i] - reference[i]));
        }
        const double ratio =
            1.0 - static_cast<double>(kernel->footprint_bytes()) / static_cast<double>(csr_bytes);
        std::cout << "  " << kernel->name() << ": max |err| = " << max_err
                  << ", footprint = " << kernel->footprint_bytes() << " bytes ("
                  << static_cast<int>(ratio * 100.0) << "% smaller than CSR)\n";
    }
    std::cout << "\nAll kernels computed the same product from one shared interface.\n";
    return 0;
}
