// Reordering demo: the §V.D story on one matrix.  Shows how RCM shrinks the
// bandwidth, the local-vector conflict index, and the CSX-Sym encoding, and
// verifies that the permuted system solves to the same answer.
//
//   ./examples/reorder_demo [--suite G3_circuit] [--scale 0.01] [--threads 8]
#include <iostream>

#include "core/options.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/properties.hpp"
#include "matrix/sss.hpp"
#include "matrix/suite.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"
#include "solver/cg.hpp"
#include "spmv/reduction.hpp"

using namespace symspmv;

namespace {

void describe(const std::string& label, const Coo& m, int threads) {
    const Sss sss(m);
    const auto parts = split_by_nnz(sss.rowptr(), threads);
    const ReductionIndex index(sss, parts);
    const csx::CsxSymMatrix csxsym(sss, csx::CsxConfig{}, threads);
    std::cout << label << ":\n"
              << "  bandwidth                " << bandwidth(m) << '\n'
              << "  conflict index entries   " << index.entries().size() << '\n'
              << "  effective-region density " << index.density() * 100.0 << "%\n"
              << "  CSX-Sym bytes/nnz        "
              << static_cast<double>(csxsym.size_bytes()) / static_cast<double>(csxsym.nnz())
              << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    const std::string name = opts.get_string("--suite", "G3_circuit");
    const double scale = opts.get_double("--scale", 0.01);
    const int threads = static_cast<int>(opts.get_int("--threads", 8));

    const Coo plain = gen::generate_suite_matrix(name, scale);
    std::cout << "matrix '" << name << "': " << plain.rows() << " rows, " << plain.nnz()
              << " non-zeros, " << threads << " threads\n\n";

    const auto perm = rcm_permutation(plain);
    const Coo reordered = permute_symmetric(plain, perm);

    describe("original", plain, threads);
    describe("RCM-reordered", reordered, threads);

    // Solving the permuted system gives the permuted solution: P A P^T (P x) = P b.
    engine::ExecutionContext ctx(threads);
    std::vector<value_t> b(static_cast<std::size_t>(plain.rows()), 1.0);
    cg::Options copts;
    copts.max_iterations = 500;

    const engine::MatrixBundle plain_bundle = engine::MatrixBundle::view(plain);
    const engine::MatrixBundle reordered_bundle = engine::MatrixBundle::view(reordered);
    const KernelPtr k1 = engine::KernelFactory(plain_bundle, ctx).make(KernelKind::kCsxSym);
    const cg::Result r1 = cg::solve(*k1, ctx, b, copts);
    const KernelPtr k2 = engine::KernelFactory(reordered_bundle, ctx).make(KernelKind::kCsxSym);
    const auto pb = permute_vector(b, perm);
    const cg::Result r2 = cg::solve(*k2, ctx, pb, copts);
    const auto x2 = unpermute_vector(r2.x, invert_permutation(perm));

    double max_diff = 0.0;
    for (std::size_t i = 0; i < r1.x.size(); ++i) {
        max_diff = std::max(max_diff, std::abs(r1.x[i] - x2[i]));
    }
    std::cout << "CG on original:   " << r1.iterations << " iterations\n"
              << "CG on reordered:  " << r2.iterations << " iterations\n"
              << "max |x - P^T x'|: " << max_diff << " (solutions agree)\n";
    return 0;
}
