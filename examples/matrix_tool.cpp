// matrix_tool: inspect, convert and reorder sparse matrices.
//
// The Swiss-army CLI over the I/O and reordering substrates:
//
//   matrix_tool info   <in>                     structural report + advice
//   matrix_tool convert <in> <out>              .mtx <-> .smx by extension
//   matrix_tool reorder <in> <out> [--algo rcm|king|sloan]
//   matrix_tool gen    <suite-name> <out> [--scale F]
//
// Inputs/outputs: *.mtx (Matrix Market, symmetric files are expanded) or
// *.smx (the binary cache).  Symmetric matrices are written back as
// lower-triangle symmetric .mtx to keep files half-sized.
#include <fstream>
#include <iostream>
#include <string>

#include "bench/advisor.hpp"
#include "core/options.hpp"
#include "matrix/binio.hpp"
#include "matrix/mmio.hpp"
#include "matrix/properties.hpp"
#include "matrix/suite.hpp"
#include "reorder/orderings.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"

using namespace symspmv;

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(),
                                                  suffix) == 0;
}

Coo load(const std::string& path) {
    if (has_suffix(path, ".smx")) return read_binary_file(path);
    return read_matrix_market_file(path);
}

void store(const std::string& path, const Coo& coo) {
    if (has_suffix(path, ".smx")) {
        write_binary_file(path, coo);
        return;
    }
    std::ofstream out(path);
    if (!out) throw ParseError("cannot open '" + path + "' for writing");
    write_matrix_market(out, coo, /*as_symmetric=*/coo.is_symmetric());
}

int cmd_info(const std::string& in) {
    const Coo coo = load(in);
    const MatrixProperties p = analyze(coo);
    std::cout << in << ":\n"
              << "  rows x cols:        " << p.rows << " x " << p.cols << "\n"
              << "  non-zeros:          " << p.nnz << " (" << p.nnz_per_row << " per row)\n"
              << "  row nnz min/max:    " << p.min_row_nnz << " / " << p.max_row_nnz << "\n"
              << "  empty rows:         " << p.empty_rows << "\n"
              << "  bandwidth:          " << p.bandwidth << " (avg "
              << static_cast<long>(p.avg_bandwidth) << ")\n"
              << "  profile:            " << profile(coo) << "\n"
              << "  diagonal non-zeros: " << p.diag_nnz << "\n"
              << "  symmetric:          " << (p.numerically_symmetric ? "yes" : "no")
              << (p.structurally_symmetric && !p.numerically_symmetric ? " (structurally only)"
                                                                       : "")
              << "\n";
    const bench::Advice advice = bench::advise(coo);
    std::cout << "  suggested format:   " << to_string(advice.kernel) << "\n"
              << "    (" << advice.rationale << ")\n";
    return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
    const Coo coo = load(in);
    store(out, coo);
    std::cout << "wrote " << out << " (" << coo.rows() << " rows, " << coo.nnz()
              << " non-zeros)\n";
    return 0;
}

int cmd_reorder(const std::string& in, const std::string& out, const std::string& algo) {
    const Coo coo = load(in);
    std::vector<index_t> perm;
    if (algo == "rcm") {
        perm = rcm_permutation(coo);
    } else if (algo == "king") {
        perm = king_permutation(coo);
    } else if (algo == "sloan") {
        perm = sloan_permutation(coo);
    } else {
        std::cerr << "unknown --algo '" << algo << "' (rcm|king|sloan)\n";
        return 2;
    }
    const Coo reordered = permute_symmetric(coo, perm);
    store(out, reordered);
    std::cout << algo << ": bandwidth " << bandwidth(coo) << " -> " << bandwidth(reordered)
              << ", profile " << profile(coo) << " -> " << profile(reordered) << "\n";
    return 0;
}

int cmd_gen(const std::string& name, const std::string& out, double scale) {
    const Coo coo = gen::generate_suite_matrix(name, scale);
    store(out, coo);
    std::cout << "generated " << name << " at scale " << scale << ": " << coo.rows()
              << " rows, " << coo.nnz() << " non-zeros -> " << out << "\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    const auto& args = opts.positional();
    try {
        if (args.size() >= 2 && args[0] == "info") return cmd_info(args[1]);
        if (args.size() >= 3 && args[0] == "convert") return cmd_convert(args[1], args[2]);
        if (args.size() >= 3 && args[0] == "reorder") {
            return cmd_reorder(args[1], args[2], opts.get_string("--algo", "rcm"));
        }
        if (args.size() >= 3 && args[0] == "gen") {
            return cmd_gen(args[1], args[2], opts.get_double("--scale", 0.01));
        }
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "usage:\n"
                 "  matrix_tool info    <in>\n"
                 "  matrix_tool convert <in> <out>\n"
                 "  matrix_tool reorder <in> <out> [--algo rcm|king|sloan]\n"
                 "  matrix_tool gen     <suite-name> <out> [--scale F]\n"
                 "(.mtx and .smx selected by extension)\n";
    return 2;
}
