// cg_convergence: residual history of CG under different preconditioners.
//
// Prints ||r||/||b|| per iteration for plain CG, Jacobi-PCG and SSOR-PCG
// side by side (gnuplot-ready columns), demonstrating the solver module's
// extension arm and the record_residuals option.
//
//   ./examples/cg_convergence [--suite thermal2] [--scale 0.01]
//                             [--threads 4] [--tol 1e-10] [--max-iter 500]
#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/options.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "matrix/sss.hpp"
#include "matrix/suite.hpp"
#include "solver/pcg.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    try {
        const std::string name = opts.get_string("--suite", "thermal2");
        const engine::MatrixBundle bundle(
            gen::generate_suite_matrix(name, opts.get_double("--scale", 0.01)));
        engine::ExecutionContext ctx(static_cast<int>(opts.get_int("--threads", 4)));
        const engine::KernelFactory factory(bundle, ctx);
        auto kernel = factory.make(KernelKind::kSssIndexing);

        std::vector<value_t> b(static_cast<std::size_t>(bundle.coo().rows()), 1.0);
        const double b_norm = std::sqrt(static_cast<double>(b.size()));

        cg::Options cg_opts;
        cg_opts.tolerance = opts.get_double("--tol", 1e-10);
        cg_opts.max_iterations = static_cast<int>(opts.get_int("--max-iter", 500));
        cg_opts.record_residuals = true;

        std::vector<std::vector<double>> histories;
        std::vector<std::string> labels = {"none", "jacobi", "ssor"};
        for (const std::string& p : labels) {
            auto pc = cg::make_preconditioner(p, bundle.sss(), ctx);
            const cg::PcgResult res = cg::pcg_solve(*kernel, *pc, ctx, b, cg_opts);
            histories.push_back(res.base.residual_history);
            std::cerr << p << ": " << res.base.iterations << " iterations, "
                      << (res.base.converged ? "converged" : "NOT converged") << "\n";
        }

        std::cout << "# " << name << " (" << bundle.coo().rows() << " rows): relative residual "
                  << "per CG iteration\n"
                  << "# iter  none  jacobi  ssor\n";
        std::size_t depth = 0;
        for (const auto& h : histories) depth = std::max(depth, h.size());
        std::cout << std::scientific << std::setprecision(3);
        for (std::size_t i = 0; i < depth; ++i) {
            std::cout << i;
            for (const auto& h : histories) {
                if (i < h.size()) {
                    std::cout << "  " << h[i] / b_norm;
                } else {
                    std::cout << "  -";
                }
            }
            std::cout << "\n";
        }
        std::cout << "# plot with: gnuplot -e \"set logscale y; "
                     "plot 'out.dat' u 1:2 w l t 'none', '' u 1:3 w l t 'jacobi', "
                     "'' u 1:4 w l t 'ssor'\"\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
