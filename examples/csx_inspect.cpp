// csx_inspect: look inside a CSX / CSX-Sym encoding.
//
// Shows what the detector found for a matrix: the selected pattern table,
// per-pattern element coverage, delta-unit fallbacks, the ctl/values byte
// split and the resulting compression ratio — the "why is my matrix (not)
// compressing" debugging tool.
//
//   ./examples/csx_inspect [matrix.mtx] [--suite bmwcra_1] [--scale 0.02]
//                          [--partitions 4] [--sym] [--min-len 4]
#include <iomanip>
#include <iostream>
#include <map>
#include <string>

#include "core/options.hpp"
#include "csx/csx_matrix.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/csr.hpp"
#include "matrix/mmio.hpp"
#include "matrix/sss.hpp"
#include "matrix/suite.hpp"

using namespace symspmv;

namespace {

void print_coverage(const std::map<csx::Pattern, std::int64_t>& coverage, std::int64_t stored) {
    std::cout << "\nper-pattern element coverage:\n";
    std::int64_t patterned = 0;
    for (const auto& [pattern, count] : coverage) {
        std::cout << "  " << std::left << std::setw(18) << to_string(pattern) << std::right
                  << std::setw(10) << count << "  (" << std::fixed << std::setprecision(1)
                  << 100.0 * static_cast<double>(count) / static_cast<double>(stored) << "%)\n";
        if (!is_delta(pattern.type)) patterned += count;
    }
    std::cout << "  substructure-encoded total: " << patterned << " / " << stored << " ("
              << std::setprecision(1)
              << 100.0 * static_cast<double>(patterned) / static_cast<double>(stored) << "%)\n";
}

}  // namespace

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    try {
        Coo full;
        std::string label;
        if (!opts.positional().empty()) {
            label = opts.positional().front();
            full = read_matrix_market_file(label);
        } else {
            label = opts.get_string("--suite", "bmwcra_1");
            full = gen::generate_suite_matrix(label, opts.get_double("--scale", 0.02));
        }
        const int partitions = static_cast<int>(opts.get_int("--partitions", 4));
        csx::CsxConfig cfg;
        cfg.min_pattern_length = static_cast<int>(opts.get_int("--min-len", 4));

        const double csr_bytes = static_cast<double>(Csr(full).size_bytes());
        std::cout << "matrix " << label << ": " << full.rows() << " rows, " << full.nnz()
                  << " non-zeros, CSR = " << static_cast<std::size_t>(csr_bytes) / 1024
                  << " KiB, " << partitions << " partitions\n";

        if (opts.has("--sym")) {
            const Sss sss(full);
            const csx::CsxSymMatrix m(sss, cfg, partitions);
            std::cout << "\nCSX-Sym encoding (lower triangle + dvalues):\n";
            std::size_t ctl = 0;
            std::size_t vals = 0;
            for (int p = 0; p < m.partitions(); ++p) {
                ctl += m.partition(p).ctl.size();
                vals += m.partition(p).values.size() * kValueBytes;
            }
            std::cout << "  pattern table: " << m.table().size() << " entries\n";
            for (const csx::Pattern& p : m.table()) std::cout << "    " << to_string(p) << "\n";
            std::cout << "  ctl bytes: " << ctl << ", value bytes: " << vals
                      << ", dvalues bytes: " << m.dvalues().size() * kValueBytes << "\n"
                      << "  compression vs CSR: " << std::fixed << std::setprecision(1)
                      << 100.0 * (1.0 - static_cast<double>(m.size_bytes()) / csr_bytes) << "%\n"
                      << "  preprocessing: " << m.preprocess_seconds() * 1e3 << " ms\n";
            print_coverage(m.coverage(), static_cast<std::int64_t>(Sss(full).stored_nnz()) -
                                             full.rows());
        } else {
            const csx::CsxMatrix m(Csr(full), cfg, partitions);
            std::cout << "\nCSX encoding (full matrix):\n";
            std::cout << "  pattern table: " << m.table().size() << " entries\n";
            for (const csx::Pattern& p : m.table()) std::cout << "    " << to_string(p) << "\n";
            std::cout << "  compression vs CSR: " << std::fixed << std::setprecision(1)
                      << 100.0 * (1.0 - static_cast<double>(m.size_bytes()) / csr_bytes) << "%\n"
                      << "  preprocessing: " << m.preprocess_seconds() * 1e3 << " ms\n";
            print_coverage(m.coverage(), full.nnz());
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
