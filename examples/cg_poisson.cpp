// Solve a 2-D Poisson problem with the Conjugate Gradient method, comparing
// the CSR baseline against the optimized symmetric kernels (the paper's
// Fig. 14 scenario as a runnable example).
//
//   ./examples/cg_poisson [--nx 128] [--ny 128] [--threads 4] [--tol 1e-8]
#include <iomanip>
#include <iostream>

#include "core/options.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "matrix/generators.hpp"
#include "solver/cg.hpp"

using namespace symspmv;

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    const auto nx = static_cast<index_t>(opts.get_int("--nx", 128));
    const auto ny = static_cast<index_t>(opts.get_int("--ny", 128));
    const int threads = static_cast<int>(opts.get_int("--threads", 4));
    const double tol = opts.get_double("--tol", 1e-8);

    const Coo a = gen::poisson2d(nx, ny);
    std::cout << "Poisson " << nx << "x" << ny << " grid: " << a.rows() << " unknowns, "
              << a.nnz() << " non-zeros\n\n";

    // Right-hand side: a point source in the middle of the grid.
    std::vector<value_t> b(static_cast<std::size_t>(a.rows()), 0.0);
    b[static_cast<std::size_t>(a.rows()) / 2] = 1.0;

    engine::ExecutionContext ctx(threads);
    const engine::MatrixBundle bundle = engine::MatrixBundle::view(a);
    const engine::KernelFactory factory(bundle, ctx);
    cg::Options copts;
    copts.tolerance = tol;
    copts.max_iterations = 4 * static_cast<int>(nx + ny);

    std::cout << std::left << std::setw(10) << "format" << std::right << std::setw(8) << "iters"
              << std::setw(14) << "residual" << std::setw(12) << "spmv ms" << std::setw(12)
              << "reduce ms" << std::setw(12) << "vecops ms" << '\n';
    for (KernelKind kind : figure_kernel_kinds()) {
        const KernelPtr kernel = factory.make(kind);
        const cg::Result res = cg::solve(*kernel, ctx, b, copts);
        std::cout << std::left << std::setw(10) << to_string(kind) << std::right << std::setw(8)
                  << res.iterations << std::setw(14) << std::scientific << std::setprecision(2)
                  << res.residual_norm << std::fixed << std::setw(12)
                  << res.breakdown.spmv_multiply_seconds * 1e3 << std::setw(12)
                  << res.breakdown.spmv_reduction_seconds * 1e3 << std::setw(12)
                  << res.breakdown.vector_ops_seconds * 1e3 << (res.converged ? "" : "  (cap)")
                  << '\n';
    }
    std::cout << "\nEvery format reaches the same solution; the symmetric kernels read half\n"
                 "the matrix bytes per iteration.\n";
    return 0;
}
