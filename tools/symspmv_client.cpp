// symspmv_client: command-line client for a running symspmv_serve daemon.
//
// Modes (exactly one):
//   --ping                liveness round trip
//   --smoke               end-to-end check: generate an SPD Poisson matrix,
//                         open a session, verify spmv against a local
//                         computation, run a CG solve, verify the residual,
//                         re-open by fingerprint, close.  Prints SMOKE PASS
//                         and exits 0 only when every step checks out.
//   --metrics             print the daemon's Prometheus exposition
//   --dump-trace [FILE]   fetch the daemon's flight recorder as a Chrome
//                         trace_event JSON document (stdout, or FILE); load
//                         it in chrome://tracing or Perfetto
//   --solve FILE.mtx      open a MatrixMarket file and CG-solve A x = 1
//   --shutdown            ask the daemon to drain
//
// Addressing: --host/--port (TCP, default 127.0.0.1:7070) or --unix PATH.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/options.hpp"
#include "matrix/binio.hpp"
#include "matrix/generators.hpp"
#include "serve/client.hpp"

namespace {

using namespace symspmv;
using namespace symspmv::serve;

Client connect(const Options& opts) {
    const std::string unix_path = opts.get_string("unix", "");
    if (!unix_path.empty()) return Client::connect_to_unix(unix_path);
    return Client::connect_to_tcp(opts.get_string("host", "127.0.0.1"),
                                  static_cast<int>(opts.get_int("port", 7070)));
}

/// y = A x computed locally from the COO entries, the smoke oracle.
std::vector<double> reference_spmv(const Coo& coo, const std::vector<double>& x) {
    std::vector<double> y(static_cast<std::size_t>(coo.rows()), 0.0);
    for (const auto& e : coo.entries()) {
        y[static_cast<std::size_t>(e.row)] += e.val * x[static_cast<std::size_t>(e.col)];
    }
    return y;
}

int run_smoke(const Options& opts) {
    const Coo matrix = gen::make_spd(gen::poisson2d(24, 24));
    const auto n = static_cast<std::size_t>(matrix.rows());
    std::ostringstream smx(std::ios::binary);
    write_binary(smx, matrix);

    Client client = connect(opts);
    client.ping();

    const SessionInfo info = client.open_smx(smx.str());
    std::cout << "opened session " << info.session << " (" << info.rows << " rows, "
              << info.nnz << " nnz, kernel " << info.kernel << ", fingerprint "
              << info.fingerprint << ")\n";

    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = 1.0 + 0.25 * static_cast<double>(i % 7);
    const std::vector<double> y = client.spmv(info.session, x);
    const std::vector<double> ref = reference_spmv(matrix, x);
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) max_err = std::max(max_err, std::abs(y[i] - ref[i]));
    if (max_err > 1e-10) {
        std::cerr << "SMOKE FAIL: spmv deviates from the local reference by " << max_err
                  << "\n";
        return 1;
    }

    // A varied right-hand side (make_spd gives A*ones == ones exactly, which
    // would let CG converge in one trivial step and prove nothing).
    const SolveResult solved = client.solve(info.session, x, 1e-8, 2000);
    if (!solved.converged) {
        std::cerr << "SMOKE FAIL: CG did not converge (residual " << solved.residual_norm
                  << " after " << solved.iterations << " iterations)\n";
        return 1;
    }
    std::cout << "solve converged in " << solved.iterations << " iterations, residual "
              << solved.residual_norm << "\n";

    // Warm re-open: the daemon must already hold this matrix state.
    const SessionInfo again = client.open_fingerprint(info.fingerprint);
    if (again.fingerprint != info.fingerprint) {
        std::cerr << "SMOKE FAIL: fingerprint re-open returned a different matrix\n";
        return 1;
    }
    client.close_session(again.session);
    client.close_session(info.session);

    const std::string metrics = client.metrics();
    if (metrics.find("symspmv_serve_requests_total") == std::string::npos) {
        std::cerr << "SMOKE FAIL: /metrics is missing the request counters\n";
        return 1;
    }
    std::cout << "SMOKE PASS\n";
    return 0;
}

int run_solve(const Options& opts, const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    Client client = connect(opts);
    const SessionInfo info = client.open_matrix_market(text.str());
    std::cout << "opened " << path << ": " << info.rows << " rows, " << info.nnz
              << " nnz, kernel " << info.kernel << "\n";
    const std::vector<double> b(info.rows, 1.0);
    const SolveResult solved =
        client.solve(info.session, b, opts.get_double("tol", 1e-8),
                     static_cast<std::uint32_t>(opts.get_int("max-iterations", 1000)));
    std::cout << (solved.converged ? "converged" : "NOT converged") << " in "
              << solved.iterations << " iterations, residual " << solved.residual_norm << "\n";
    client.close_session(info.session);
    return solved.converged ? 0 : 1;
}

int run_dump_trace(const Options& opts) {
    const std::string trace = connect(opts).dump_trace();
    const auto out_path = opts.get("dump-trace");
    if (!out_path || out_path->empty()) {
        std::cout << trace << "\n";
        return 0;
    }
    std::ofstream out(*out_path, std::ios::binary);
    out << trace << "\n";
    if (!out) {
        std::cerr << "cannot write " << *out_path << "\n";
        return 2;
    }
    std::cout << "wrote " << trace.size() << " bytes to " << *out_path << "\n";
    return 0;
}

void usage(const std::string& prog) {
    std::cout << "usage: " << prog
              << " [--host H] [--port P] [--unix PATH] "
                 "--ping | --smoke | --metrics | --dump-trace [FILE] | "
                 "--solve FILE.mtx | --shutdown\n";
}

}  // namespace

int main(int argc, char** argv) {
    const Options opts(argc, argv);
    if (opts.has("help")) {
        usage(opts.program());
        return 0;
    }
    try {
        if (opts.has("ping")) {
            connect(opts).ping();
            std::cout << "PONG\n";
            return 0;
        }
        if (opts.has("smoke")) return run_smoke(opts);
        if (opts.has("metrics")) {
            std::cout << connect(opts).metrics();
            return 0;
        }
        if (opts.has("dump-trace")) return run_dump_trace(opts);
        if (opts.has("solve")) {
            const auto path = opts.get("solve");
            if (!path) {
                usage(opts.program());
                return 2;
            }
            return run_solve(opts, *path);
        }
        if (opts.has("shutdown")) {
            connect(opts).shutdown_server();
            std::cout << "daemon acknowledged shutdown\n";
            return 0;
        }
        usage(opts.program());
        return 2;
    } catch (const RemoteError& e) {
        std::cerr << "daemon error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
