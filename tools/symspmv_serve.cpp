// symspmv_serve: the long-lived solve daemon.
//
// Boots a serve::Server on a TCP and/or unix-domain listener, prints one
// "listening" line per listener (machine-parseable; the smoke script reads
// the port from it), then blocks until SIGTERM/SIGINT or a client kShutdown
// frame initiates the drain.  On exit it prints a one-line drain summary.
//
//   symspmv_serve --port 0 --threads 4 --tune --plan-cache /var/cache/symspmv
//
// Signals are handled on a dedicated sigwait thread: the signal mask is set
// before any server thread starts, so every thread inherits it and delivery
// is deterministic.  First signal drains gracefully; a second one is left
// at default disposition (kills the process) as the escape hatch.

#include <csignal>
#include <cstring>
#include <iostream>
#include <thread>

#include <unistd.h>

#include "core/options.hpp"
#include "core/topology.hpp"
#include "obs/log.hpp"
#include "serve/server.hpp"

namespace {

using namespace symspmv;

PinStrategy parse_pin(const std::string& name) {
    if (name == "none") return PinStrategy::kNone;
    if (name == "compact") return PinStrategy::kCompact;
    if (name == "scatter") return PinStrategy::kScatter;
    if (name == "per-socket") return PinStrategy::kPerSocket;
    throw InvalidArgument("unknown --pin value: " + name +
                          " (expected none|compact|scatter|per-socket)");
}

void usage(const std::string& prog) {
    std::cout
        << "usage: " << prog << " [options]\n"
        << "  --port N           TCP port to listen on (0 = kernel-assigned; default 7070)\n"
        << "  --host ADDR        TCP bind address (default 127.0.0.1)\n"
        << "  --no-tcp           disable the TCP listener\n"
        << "  --unix PATH        also listen on a unix-domain socket\n"
        << "  --threads N        worker threads per execution context (default 2)\n"
        << "  --pin S            thread pinning: none|compact|scatter|per-socket\n"
        << "  --workers N        request worker threads (default 2)\n"
        << "  --queue-depth N    admission queue depth; overflow is shed (default 64)\n"
        << "  --plan-cache DIR   persistent tuned-plan cache (default: in-memory)\n"
        << "  --matrix-cache DIR persistent .smx cache for open-by-fingerprint\n"
        << "  --tune             background tune-on-miss (opens stay fast)\n"
        << "  --tune-budget N    trials per background tune (default 6)\n"
        << "  --max-states N     resident matrix-state cap (default 32)\n"
        << "  --max-sessions N   open-session cap (default 1024)\n"
        << "  --context-pool N   warm execution-resource cap (default 8)\n"
        << "  --slow-ms N        slow-request capture threshold in ms for compute\n"
        << "                     requests (0 = rolling p99 of the solve-phase\n"
        << "                     histogram; default 0)\n"
        << "  --slow-log PATH    JSONL sidecar slow captures append to\n"
        << "                     (default serve_slow.jsonl; empty disables)\n"
        << "\n"
        << "Logging: set SYMSPMV_LOG=debug|info|warn|error (default info).\n"
        << "Tracing: every request is recorded in an in-memory flight recorder\n"
        << "(SYMSPMV_FLIGHT_CAPACITY spans, default 8192); dump it with\n"
        << "  symspmv_client --dump-trace\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace symspmv::serve;
    const Options opts(argc, argv);
    if (opts.has("help")) {
        usage(opts.program());
        return 0;
    }
    try {
        ServerOptions sopts;
        sopts.service.threads = static_cast<int>(opts.get_int("threads", 2));
        sopts.service.pin_strategy = parse_pin(opts.get_string("pin", "none"));
        sopts.service.plan_cache_dir = opts.get_string("plan-cache", "");
        sopts.service.matrix_cache_dir = opts.get_string("matrix-cache", "");
        sopts.service.tune = opts.get_bool("tune", false);
        sopts.service.tune_budget = static_cast<int>(opts.get_int("tune-budget", 6));
        sopts.service.max_states = static_cast<std::size_t>(opts.get_int("max-states", 32));
        sopts.service.max_sessions =
            static_cast<std::size_t>(opts.get_int("max-sessions", 1024));
        sopts.service.context_pool_capacity =
            static_cast<std::size_t>(opts.get_int("context-pool", 8));
        sopts.service.test_request_delay_ms =
            static_cast<int>(opts.get_int("test-request-delay-ms", 0));
        sopts.service.slow_ms = opts.get_double("slow-ms", 0.0);
        sopts.service.slow_log_path = opts.get_string("slow-log", "serve_slow.jsonl");
        sopts.host = opts.get_string("host", "127.0.0.1");
        sopts.port = opts.has("no-tcp") ? -1 : static_cast<int>(opts.get_int("port", 7070));
        sopts.unix_path = opts.get_string("unix", "");
        sopts.queue_capacity = static_cast<std::size_t>(opts.get_int("queue-depth", 64));
        sopts.workers = static_cast<int>(opts.get_int("workers", 2));
        if (sopts.port < 0 && sopts.unix_path.empty()) {
            std::cerr << "symspmv-serve: nothing to listen on (--no-tcp and no --unix)\n";
            return 2;
        }

        // Mask the drain signals before the server spawns any thread.
        sigset_t set;
        sigemptyset(&set);
        sigaddset(&set, SIGTERM);
        sigaddset(&set, SIGINT);
        pthread_sigmask(SIG_BLOCK, &set, nullptr);

        Server server(sopts);
        obs::log_info("serve starting",
                      {{"threads", std::to_string(sopts.service.threads)},
                       {"workers", std::to_string(sopts.workers)},
                       {"queue_depth", std::to_string(sopts.queue_capacity)},
                       {"tune", sopts.service.tune ? "on" : "off"},
                       {"slow_log", sopts.service.slow_log_path.empty()
                                        ? "off"
                                        : sopts.service.slow_log_path}});
        if (server.port() >= 0) {
            std::cout << "symspmv-serve: listening on " << sopts.host << ":" << server.port()
                      << std::endl;
        }
        if (!sopts.unix_path.empty()) {
            std::cout << "symspmv-serve: listening on unix:" << sopts.unix_path << std::endl;
        }

        std::thread signal_thread([&set, &server] {
            int sig = 0;
            sigwait(&set, &sig);
            if (!server.draining()) {
                obs::log_info("caught signal, draining", {{"signal", strsignal(sig)}});
            }
            server.begin_shutdown();
        });

        server.wait();
        // If the drain came from a client kShutdown frame the signal thread
        // is still parked in sigwait; a self-signal releases it (it stays
        // blocked and pending — never fatal — if the thread already exited).
        kill(getpid(), SIGTERM);
        signal_thread.join();

        const Server::Stats stats = server.stats();
        std::cout << "symspmv-serve: drained cleanly (connections=" << stats.connections_total
                  << " shed=" << stats.requests_shed << " http=" << stats.http_requests << ")"
                  << std::endl;
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "symspmv-serve: " << e.what() << "\n";
        return 1;
    }
}
