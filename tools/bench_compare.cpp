// bench_compare — the statistical perf-regression gate.
//
// Compares two RunRecord JSONL sets (a committed baseline and a fresh
// sweep) cell by cell and exits non-zero when any (matrix, kernel, threads)
// cell regressed significantly: relative median GFLOP/s change beyond the
// noise floor AND disjoint bootstrap confidence intervals (obs/compare.hpp
// documents the test).  CI runs this against BENCH_baseline.jsonl; the
// baseline-refresh workflow is in docs/REPRODUCING.md.
//
//   bench_compare BASELINE.jsonl CURRENT.jsonl [options]
//     --noise-floor F   relative change treated as noise     (default 0.05)
//     --min-samples N   cells below N samples never gate     (default 3)
//     --resamples N     bootstrap resamples per side          (default 2000)
//     --confidence F    two-sided CI level                    (default 0.95)
//     --seed N          base RNG seed                         (default 2013)
//     --out FILE        also write the markdown report here
//     --report-only     never fail on regressions (exit 0); the scheduled
//                       perf-full lane reports, only the small gate blocks
//
// Exit codes: 0 = no significant regression (always under --report-only),
// 1 = regression(s), 2 = usage or I/O error.  The report goes to stdout
// either way.
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "core/options.hpp"
#include "obs/compare.hpp"

namespace {

int usage(const char* prog) {
    std::cerr << "usage: " << prog
              << " BASELINE.jsonl CURRENT.jsonl [--noise-floor F] [--min-samples N]"
                 " [--resamples N] [--confidence F] [--seed N] [--out FILE]"
                 " [--report-only]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace symspmv;
    try {
        const Options opts(argc, argv);
        if (opts.positional().size() != 2) return usage(argv[0]);
        const std::string& baseline_path = opts.positional()[0];
        const std::string& current_path = opts.positional()[1];

        obs::CompareOptions copts;
        copts.noise_floor = opts.get_double("--noise-floor", copts.noise_floor);
        copts.min_samples = static_cast<int>(opts.get_int("--min-samples", copts.min_samples));
        copts.resamples = static_cast<int>(opts.get_int("--resamples", copts.resamples));
        copts.confidence = opts.get_double("--confidence", copts.confidence);
        copts.seed = static_cast<std::uint64_t>(
            opts.get_int("--seed", static_cast<long>(copts.seed)));
        if (copts.noise_floor < 0.0 || copts.min_samples < 1 ||
            copts.confidence <= 0.0 || copts.confidence >= 1.0) {
            return usage(argv[0]);
        }

        const auto baseline = obs::load_run_records(baseline_path);
        const auto current = obs::load_run_records(current_path);
        const obs::CompareReport report = obs::compare_runs(baseline, current, copts);
        const std::string markdown = obs::render_markdown(report, baseline_path, current_path);
        std::cout << markdown;

        if (const auto out_path = opts.get("--out")) {
            std::ofstream out(*out_path);
            out << markdown;
            if (!out) {
                std::cerr << "bench_compare: cannot write '" << *out_path << "'\n";
                return 2;
            }
        }
        if (!report.pass() && opts.has("--report-only")) {
            std::cerr << "bench_compare: regressions found, exiting 0 (--report-only)\n";
            return 0;
        }
        return report.pass() ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "bench_compare: " << e.what() << "\n";
        return 2;
    }
}
