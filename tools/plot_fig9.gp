# gnuplot script for Fig. 9 (symmetric SpM×V speedup per reduction method)
# from the CSV written by tools/reproduce.sh:
#
#   gnuplot -e "csv='results/fig9_local_vectors.csv'" tools/plot_fig9.gp
#
# Produces fig9.png next to the current directory.
if (!exists("csv")) csv = 'results/fig9_local_vectors.csv'
set datafile separator ','
set terminal pngcairo size 800,500
set output 'fig9.png'
set key top left
set xlabel 'threads'
set ylabel 'speedup over serial CSR'
set grid
plot csv using 1:2 skip 1 with linespoints title 'CSR', \
     csv using 1:3 skip 1 with linespoints title 'SSS-naive', \
     csv using 1:4 skip 1 with linespoints title 'SSS-eff', \
     csv using 1:5 skip 1 with linespoints title 'SSS-idx'
