// bench_report: drive the paper's benchmark sweep through the observability
// sink and consolidate the results as machine-readable artifacts.
//
// The fig*/table* binaries print human-readable tables; this tool runs the
// same (matrix × kernel × threads) measurements through the §V.A harness
// with the PhaseProfiler and per-thread hardware counters attached, and
// emits:
//
//   OUT/BENCH_symspmv.jsonl  one RunRecord per measurement (JSON Lines,
//                            appended as measured — a crash loses nothing)
//   OUT/BENCH_symspmv.json   consolidated report: tool metadata, hardware
//                            signature, and every record (what CI archives
//                            and diffs PR over PR)
//   OUT/BENCH_symspmv.md     markdown summary (GFLOP/s, bandwidth, phase
//                            split, speedup over serial CSR)
//
// The record set covers the data behind Figs. 9-13: serial CSR baseline,
// the reduction-method family (SSS-naive/effective/idx) and the figure
// kernels (CSR, CSX, SSS-idx, CSX-Sym) across the thread sweep.  Mapping
// from records to paper figures: docs/REPRODUCING.md.
//
//   bench_report [--tier smoke|small|full] [--out DIR] [--scale F]
//                [--matrices DIR] [--matrix NAME] [--iterations N]
//                [--threads LIST] [--pin] [--pin-strategy S] [--cache DIR]
//                [--metrics FILE]
//
// Every record is additionally attributed against the machine's probed
// roofline ceilings (memory-bound vs sync-bound; obs/attribution.hpp) in
// the consolidated JSON and the markdown.  --metrics FILE exports the
// metrics registry after the sweep — JSON when FILE ends in .json,
// Prometheus text exposition otherwise.
//
// The tiers trade coverage for wall-clock:
//   smoke  two tiny matrices, three kernels, two thread counts (the blocking
//          CI configuration; finishes in seconds).  --smoke is an alias.
//   small  the default: every suite matrix at laptop scale.
//   full   paper scale (--scale 1.0) over a structure-class-covering subset
//          with the full kernel set — the scheduled perf-full CI lane.  Pair
//          with --cache DIR so the multi-million-nnz matrices are generated
//          once per machine and loaded as .smx afterwards.
// Explicit --scale/--iterations/--threads/--matrix always override the tier
// defaults.  Exit code is non-zero when the self-check — re-reading and
// parsing every artifact it just wrote — fails, so "bench_report ran"
// implies "the artifacts parse".
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "autotune/fingerprint.hpp"
#include "bench/common.hpp"
#include "bench/roofline.hpp"
#include "core/atomic_file.hpp"
#include "obs/attribution.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "obs/run_record.hpp"
#include "obs/trace.hpp"
#include "spmv/race_kernels.hpp"

using namespace symspmv;

namespace {

enum class Tier { kSmoke, kSmall, kFull };

std::string_view to_string(Tier tier) {
    switch (tier) {
        case Tier::kSmoke: return "smoke";
        case Tier::kSmall: return "small";
        case Tier::kFull: return "full";
    }
    return "?";
}

struct ReportConfig {
    bench::BenchEnv env;
    std::string out_dir = ".";
    Tier tier = Tier::kSmall;
    std::string metrics_path;  // --metrics FILE: registry export, "" = off
    std::vector<KernelKind> kinds;

    [[nodiscard]] bool smoke() const { return tier == Tier::kSmoke; }
};

/// Restricts the sweep to the suite matrices named in @p keep (no-op when
/// none of them survived an earlier --matrix filter).
void keep_matrices(bench::BenchEnv& env, std::initializer_list<std::string_view> keep) {
    std::vector<gen::SuiteEntry> subset;
    for (const gen::SuiteEntry& e : env.entries) {
        if (std::find(keep.begin(), keep.end(), e.name) != keep.end()) subset.push_back(e);
    }
    if (!subset.empty()) env.entries = std::move(subset);
}

ReportConfig parse_config(int argc, char** argv) {
    ReportConfig cfg;
    cfg.env = bench::parse_env(argc, argv, /*default_iterations=*/24);
    const Options opts(argc, argv);
    cfg.out_dir = opts.get_string("--out", ".");
    const std::string tier = opts.get_string("--tier", opts.has("--smoke") ? "smoke" : "small");
    if (tier == "smoke") {
        cfg.tier = Tier::kSmoke;
    } else if (tier == "small") {
        cfg.tier = Tier::kSmall;
    } else if (tier == "full") {
        cfg.tier = Tier::kFull;
    } else {
        std::cerr << "unknown --tier '" << tier << "' (smoke|small|full)\n";
        std::exit(2);
    }
    cfg.metrics_path = opts.get_string("--metrics", "");
    switch (cfg.tier) {
        case Tier::kSmoke:
            // Blocking-CI configuration: tiny matrices, the headline kernels,
            // two thread counts — every record field exercised in seconds.
            if (!opts.has("--scale")) cfg.env.scale = 0.004;
            if (!opts.has("--iterations")) cfg.env.iterations = 4;
            if (!opts.has("--threads")) {
                cfg.env.thread_counts =
                    bench::clamp_thread_counts({1, 2}, local_topology().logical_cpus());
            }
            if (!opts.has("--matrix")) keep_matrices(cfg.env, {"consph", "parabolic_fem"});
            cfg.kinds = {KernelKind::kCsr, KernelKind::kSssIndexing, KernelKind::kCsxSym,
                         KernelKind::kSssRace};
            break;
        case Tier::kSmall:
            cfg.kinds = {KernelKind::kCsr,          KernelKind::kCsx,
                         KernelKind::kSssNaive,     KernelKind::kSssEffective,
                         KernelKind::kSssIndexing,  KernelKind::kCsxSym,
                         KernelKind::kSssRace};
            break;
        case Tier::kFull:
            // Paper scale over one matrix per structure class (Table I row
            // counts; tens of millions of non-zeros).  The subset keeps the
            // scheduled lane's wall-clock bounded while still exceeding any
            // LLC by an order of magnitude — the regime where the paper's
            // memory-bound argument and the NUMA placement actually bite.
            if (!opts.has("--scale")) cfg.env.scale = 1.0;
            if (!opts.has("--iterations")) cfg.env.iterations = 16;
            if (!opts.has("--threads")) {
                cfg.env.thread_counts =
                    bench::clamp_thread_counts({1, 2, 4, 8}, local_topology().logical_cpus());
            }
            if (!opts.has("--matrix")) {
                keep_matrices(cfg.env,
                              {"parabolic_fem", "offshore", "consph", "G3_circuit"});
            }
            cfg.kinds = {KernelKind::kCsr,          KernelKind::kCsx,
                         KernelKind::kSssNaive,     KernelKind::kSssEffective,
                         KernelKind::kSssIndexing,  KernelKind::kCsxSym,
                         KernelKind::kSssRace};
            break;
    }
    return cfg;
}

std::string fmt(double v, int precision = 2) { return bench::TablePrinter::fmt(v, precision); }

/// Per-cell context the RunRecord schema does not carry: where the kernel
/// configuration came from (here always the registry sweep — a plan-replay
/// sweep would say `plan:<file>`), and the per-stage wall-clock of
/// stage-scheduled kernels (SSS-race) for the markdown attribution note.
struct CellExtra {
    std::string provenance;         // "registry:<kind name>"
    std::vector<double> stage_seconds;  // empty unless the kernel reports stages
};

/// GiB-free pretty-printer for the markdown summary.
std::string counter_cell(const obs::CounterSample& s, obs::Counter c) {
    const auto v = s.get(c);
    return v ? std::to_string(*v) : std::string("n/a");
}

void write_markdown(const std::string& path, const ReportConfig& cfg,
                    const std::vector<obs::RunRecord>& records,
                    const std::vector<CellExtra>& extras,
                    const bench::RooflineModel& roofline) {
    write_file_atomic(path, [&](std::ostream& out) {
        out << "# BENCH_symspmv — measured SpM×V records\n\n"
            << "Generated by `tools/bench_report` (" << to_string(cfg.tier)
            << " tier); scale=" << cfg.env.scale
            << ", iterations=" << cfg.env.iterations << ".  Full schema and derived-metric\n"
            << "formulas: `docs/OBSERVABILITY.md`; figure mapping: `docs/REPRODUCING.md`.\n\n"
            << "Machine ceilings (probed): " << fmt(roofline.peak_gflops)
            << " GFLOP/s peak, " << fmt(roofline.bandwidth_gbs)
            << " GB/s sustained; the verdict column attributes each cell against them "
               "(`docs/OBSERVABILITY.md`).\n";
        if (!records.empty()) {
            const obs::RunRecord& first = records.front();
            out << "\nExecution configuration: topology `"
                << (first.topology.empty() ? "n/a" : first.topology) << "`, pinning `"
                << (first.pinning.empty() ? "n/a" : first.pinning) << "`, placement `"
                << (first.placement.empty() ? "n/a" : first.placement) << "`, partition `"
                << first.partition << "`.\n";
        }
        std::string current;
        // Serial-CSR per-op seconds per matrix, for the speedup column.
        std::map<std::string, double> serial;
        for (const obs::RunRecord& r : records) {
            if (r.kernel == "CSR-serial") serial[r.matrix] = r.seconds_per_op;
        }
        // Stage-split notes of the matrix section being written, flushed
        // under its table before the next section starts.
        std::vector<std::string> stage_notes;
        const auto flush_stage_notes = [&] {
            for (const std::string& note : stage_notes) out << note;
            stage_notes.clear();
        };
        for (std::size_t i = 0; i < records.size(); ++i) {
            const obs::RunRecord& r = records[i];
            if (r.matrix != current) {
                flush_stage_notes();
                current = r.matrix;
                out << "\n## " << r.matrix << " (" << r.rows << " rows, " << r.nnz
                    << " nnz)\n\n"
                    << "| kernel | source | p | GFLOP/s | GB/s | multiply ms | barrier ms | "
                       "reduction ms | imbalance | speedup | LLC misses | bw frac | verdict |\n"
                    << "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|\n";
            }
            const auto it = serial.find(r.matrix);
            const std::string speedup =
                (it != serial.end() && r.seconds_per_op > 0.0)
                    ? fmt(it->second / r.seconds_per_op)
                    : std::string("n/a");
            const obs::RooflineAttribution attr = obs::attribute(r, roofline);
            // Oversubscribed rows (more workers than online CPUs) measure
            // scheduler contention, not the kernel; tag them so a 100%+
            // "imbalance" cell is never misread as a kernel regression.
            const char* tag = r.oversubscribed ? "†" : "";
            const std::string provenance =
                i < extras.size() && !extras[i].provenance.empty() ? extras[i].provenance
                                                                  : std::string("registry");
            out << "| " << r.kernel << " | " << provenance << " | " << r.threads << tag << " | "
                << fmt(r.gflops) << " | "
                << fmt(r.bandwidth_gbs) << " | " << fmt(r.multiply_seconds * 1e3, 3) << " | "
                << fmt(r.barrier_seconds * 1e3, 3) << " | " << fmt(r.reduction_seconds * 1e3, 3)
                << " | " << fmt(r.multiply_imbalance * 100.0, 1) << "% | " << speedup << " | "
                << counter_cell(r.counters, obs::Counter::kLlcMisses) << " | "
                << fmt(attr.bandwidth_fraction * 100.0, 0) << "% | " << to_string(attr.verdict)
                << " |\n";
            if (i < extras.size() && !extras[i].stage_seconds.empty()) {
                std::ostringstream note;
                note << "\n" << r.kernel << " (p=" << r.threads << tag
                     << ") stage split of the last measured op, barrier-separated: D·x init "
                     << fmt(extras[i].stage_seconds.front() * 1e3, 3) << " ms";
                if (extras[i].stage_seconds.size() > 1) {
                    note << ", then " << extras[i].stage_seconds.size() - 1 << " color stage(s): ";
                    for (std::size_t s = 1; s < extras[i].stage_seconds.size(); ++s) {
                        note << (s > 1 ? ", " : "") << fmt(extras[i].stage_seconds[s] * 1e3, 3);
                    }
                    note << " ms";
                }
                note << " — reduction-free by construction (reduction column is exactly 0).\n";
                stage_notes.push_back(note.str());
            }
        }
        flush_stage_notes();
        bool any_oversubscribed = false;
        std::string counters_note;
        for (const obs::RunRecord& r : records) {
            any_oversubscribed = any_oversubscribed || r.oversubscribed;
            if (counters_note.empty()) counters_note = r.counters_note;
        }
        if (any_oversubscribed) {
            out << "\n† oversubscribed: more worker threads than online logical CPUs; "
                   "barrier/imbalance columns measure scheduler contention, not the "
                   "kernel.\n";
        }
        if (!records.empty() && !records.front().counters.any_valid()) {
            out << "\nHardware counters were unavailable or incomplete; counter "
                   "fields are null.  Recorded reason: "
                << (counters_note.empty() ? std::string("unknown (no reason recorded)")
                                          : counters_note)
                << "\n";
        }
    });
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const ReportConfig cfg = parse_config(argc, argv);
        obs::TraceWriter* trace = obs::global_trace();

        std::filesystem::create_directories(cfg.out_dir);
        const std::string jsonl_path = cfg.out_dir + "/BENCH_symspmv.jsonl";
        const std::string json_path = cfg.out_dir + "/BENCH_symspmv.json";
        const std::string md_path = cfg.out_dir + "/BENCH_symspmv.md";
        // Truncate a previous run's JSONL: the consolidated report must
        // describe exactly this run.
        obs::RunSink sink(jsonl_path, obs::RunSink::Mode::kTruncate);

        // Machine ceilings, probed once at the widest thread count; every
        // record is attributed against them (memory-bound vs sync-bound).
        bench::RooflineModel roofline;
        {
            const int widest = *std::max_element(cfg.env.thread_counts.begin(),
                                                 cfg.env.thread_counts.end());
            // Probing through the context warms the pooled resources the
            // sweep below will check out — no second pool is ever spawned
            // for the widest thread count.
            auto probe_ctx = cfg.env.make_context(widest);
            roofline = bench::probe_roofline(probe_ctx.pool());
        }

        // Live instruments: the registry collects what the sweep does.  The
        // per-thread-count pools die with their ExecutionContext, so their
        // stats are accumulated into counters eagerly instead of registered
        // as scrape-time collectors over dangling references.
        obs::metrics::Registry& metrics = obs::metrics::global_metrics();
        obs::metrics::Counter& m_jobs = metrics.counter(
            "symspmv_pool_jobs_total", "Jobs dispatched to the worker pools of the sweep");
        obs::metrics::Counter& m_crossings = metrics.counter(
            "symspmv_pool_barrier_crossings_total",
            "In-job barrier crossings (one per worker per phase transition)");
        obs::metrics::Gauge& m_barrier_wait = metrics.gauge(
            "symspmv_pool_barrier_wait_seconds_total",
            "Seconds workers spent waiting at profiled barriers");
        obs::metrics::Histogram& m_latency = metrics.histogram(
            "symspmv_spmv_seconds_per_op",
            "Median per-operation SpM×V latency of each measured (matrix, kernel, threads) cell");

        std::vector<obs::RunRecord> records;
        std::vector<CellExtra> extras;  // parallel to records
        bool counters_seen = false;

        for (const gen::SuiteEntry& entry : cfg.env.entries) {
            Coo coo;
            {
                obs::TraceSpan load_span(trace, "load:" + entry.name);
                coo = cfg.env.load(entry);
            }
            const engine::MatrixBundle bundle(std::move(coo));
            std::cout << entry.name << ": " << bundle.coo().rows() << " rows, "
                      << bundle.coo().nnz() << " nnz\n";

            // Serial CSR first: the denominator of every speedup figure.
            std::vector<KernelKind> kinds = cfg.kinds;
            kinds.insert(kinds.begin(), KernelKind::kCsrSerial);

            for (const int threads : cfg.env.thread_counts) {
                auto ctx = cfg.env.make_context(threads);
                const engine::KernelFactory factory(bundle, ctx);
                for (const KernelKind kind : kinds) {
                    // The serial baseline is thread-independent; measure once.
                    if (kind == KernelKind::kCsrSerial && threads != cfg.env.thread_counts.front()) {
                        continue;
                    }
                    KernelPtr kernel;
                    {
                        obs::TraceSpan prep(trace,
                                            "preprocess:" + std::string(to_string(kind)));
                        kernel = factory.make(kind);
                    }
                    PhaseProfiler profiler(std::max(threads, 1));
                    if (trace != nullptr) profiler.set_trace_sink(trace);
                    obs::ThreadCounters counters(ctx, /*include_caller=*/true);
                    bench::MeasureOptions mopts = bench::measure_options(cfg.env);
                    mopts.profiler = &profiler;
                    counters.enable();
                    const bench::Measurement m = bench::measure(*kernel, mopts);
                    counters.disable();
                    const obs::CounterSample sample = counters.aggregate();
                    counters_seen = counters_seen || sample.any_valid();

                    const int effective_threads = kind == KernelKind::kCsrSerial ? 1 : threads;
                    obs::RunRecord rec = obs::make_run_record(
                        entry.name, bundle, *kernel, m, cfg.env.iterations, effective_threads,
                        engine::to_string(ctx.options().partition), &profiler, &sample,
                        obs::exec_config(ctx), counters.unavailable_reason());
                    sink.write(rec);
                    m_latency.observe(rec.seconds_per_op);
                    records.push_back(std::move(rec));
                    CellExtra extra;
                    extra.provenance = "registry:" + std::string(to_string(kind));
                    if (const auto* race = dynamic_cast<const SssRaceKernel*>(kernel.get())) {
                        const auto stages = race->stage_seconds();
                        extra.stage_seconds.assign(stages.begin(), stages.end());
                    }
                    extras.push_back(std::move(extra));
                    std::cout << "  " << kernel->name() << " x" << effective_threads << ": "
                              << fmt(records.back().gflops) << " GFLOP/s, "
                              << fmt(records.back().bandwidth_gbs) << " GB/s\n";
                }
                // The context (and its pool) dies with this iteration; fold
                // its usage totals into the registry now.
                const ThreadPool::Stats ps = ctx.pool().stats();
                m_jobs.add(static_cast<std::int64_t>(ps.jobs_dispatched));
                m_crossings.add(static_cast<std::int64_t>(ps.barrier_crossings));
                m_barrier_wait.add(ps.barrier_wait_seconds);
            }
            const engine::BundleBuildCounts bc = bundle.build_counts();
            const std::pair<const char*, int> builds[] = {{"csr", bc.csr},
                                                          {"sss", bc.sss},
                                                          {"lower_csr", bc.lower_csr},
                                                          {"properties", bc.properties}};
            for (const auto& [repr, n] : builds) {
                metrics
                    .counter("symspmv_bundle_builds_total",
                             "COO-to-derived-representation conversions performed",
                             {{"representation", repr}})
                    .add(n);
            }
        }

        // Consolidated report.
        obs::Json doc = obs::Json::object();
        doc.set("schema", obs::kRunRecordSchema);
        doc.set("tool", "bench_report");
        doc.set("tier", std::string(to_string(cfg.tier)));
        doc.set("smoke", cfg.smoke());
        doc.set("scale", cfg.env.scale);
        doc.set("iterations", cfg.env.iterations);
        doc.set("hardware",
                autotune::to_string(autotune::local_hardware_signature(cfg.env.pin_threads)));
        doc.set("counters_available", counters_seen);
        {
            // First recorded fallback reason ("" when every event opened on
            // every thread) — the doc-level echo of the per-record note.
            std::string note;
            for (const obs::RunRecord& r : records) {
                if (!r.counters_note.empty()) {
                    note = r.counters_note;
                    break;
                }
            }
            doc.set("counters_note", std::move(note));
        }
        obs::Json roof = obs::Json::object();
        roof.set("peak_gflops", roofline.peak_gflops);
        roof.set("bandwidth_gbs", roofline.bandwidth_gbs);
        roof.set("ridge_intensity", roofline.ridge_intensity());
        doc.set("roofline", std::move(roof));
        obs::Json arr = obs::Json::array();
        for (const obs::RunRecord& r : records) {
            obs::Json rec_json = obs::to_json(r);
            // Extra key on top of the RunRecord schema; the strict parsers
            // read only the schema fields, so round-trip is unaffected.
            rec_json.set("attribution", obs::to_json(obs::attribute(r, roofline)));
            arr.push_back(std::move(rec_json));
        }
        doc.set("records", std::move(arr));
        write_file_atomic(json_path, [&](std::ostream& out) { out << doc.dump() << '\n'; });

        write_markdown(md_path, cfg, records, extras, roofline);

        if (!cfg.metrics_path.empty()) {
            const bool as_json = cfg.metrics_path.size() > 5 &&
                                 cfg.metrics_path.rfind(".json") == cfg.metrics_path.size() - 5;
            write_file_atomic(cfg.metrics_path, [&](std::ostream& out) {
                if (as_json) {
                    out << metrics.to_json().dump() << '\n';
                } else {
                    out << metrics.to_prometheus();
                }
            });
        }

        // Self-check: everything just written must re-read, parse, and
        // field-equal what was measured — the acceptance contract of the
        // whole artifact chain.
        {
            std::ifstream in(json_path);
            std::stringstream buf;
            buf << in.rdbuf();
            const obs::Json parsed = obs::Json::parse(buf.str());
            const obs::JsonArray& parsed_records = parsed.at("records").as_array();
            if (parsed_records.size() != records.size()) {
                std::cerr << "self-check FAILED: record count mismatch\n";
                return 1;
            }
            for (std::size_t i = 0; i < parsed_records.size(); ++i) {
                if (obs::run_record_from_json(parsed_records[i]) != records[i]) {
                    std::cerr << "self-check FAILED: record " << i << " does not round-trip\n";
                    return 1;
                }
            }
            std::ifstream jl(jsonl_path);
            std::string line;
            std::size_t lines = 0;
            while (std::getline(jl, line)) {
                if (line.empty()) continue;
                if (obs::parse_run_record(line) != records[lines]) {
                    std::cerr << "self-check FAILED: JSONL line " << lines
                              << " does not round-trip\n";
                    return 1;
                }
                ++lines;
            }
            if (lines != records.size()) {
                std::cerr << "self-check FAILED: JSONL line count mismatch\n";
                return 1;
            }
        }

        std::cout << "\nwrote " << records.size() << " records: " << json_path << ", "
                  << jsonl_path << ", " << md_path << "\n"
                  << (counters_seen ? "hardware counters: available\n"
                                    : "hardware counters: unavailable (fields are null)\n");
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "bench_report error: " << e.what() << "\n";
        return 1;
    }
}
