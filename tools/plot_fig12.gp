# gnuplot script for Fig. 12 (per-matrix Gflop/s, grouped bars):
#
#   gnuplot -e "csv='results/fig12_per_matrix.csv'" tools/plot_fig12.gp
if (!exists("csv")) csv = 'results/fig12_per_matrix.csv'
set datafile separator ','
set terminal pngcairo size 1100,500
set output 'fig12.png'
set style data histograms
set style histogram clustered gap 1
set style fill solid 0.8 border -1
set ylabel 'Gflop/s'
set xtics rotate by -35
set key top left
set grid ytics
plot csv using 2:xtic(1) skip 1 title 'CSR', \
     csv using 3 skip 1 title 'CSX', \
     csv using 4 skip 1 title 'SSS-idx', \
     csv using 5 skip 1 title 'CSX-Sym'
