#!/usr/bin/env sh
# Reproduces every table/figure/ablation of the paper in one sweep.
#
#   tools/reproduce.sh [build-dir] [results-dir] [extra bench flags...]
#
# Each bench writes its aligned table to results/<name>.txt and a CSV
# mirror to results/<name>.csv (for the gnuplot scripts in tools/).
# Pass e.g. "--scale 0.05 --threads 1,2,4,8,16" to override the defaults.
set -eu

BUILD="${1:-build}"
RESULTS="${2:-results}"
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

mkdir -p "$RESULTS"

for bench in "$BUILD"/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name=$(basename "$bench")
    case "$name" in
        bench_kernels)
            # google-benchmark flags only; the shared bench flags don't apply.
            echo "== $name (google-benchmark)"
            "$bench" --benchmark_min_time=0.05s > "$RESULTS/$name.txt" 2>&1 || true
            ;;
        *)
            echo "== $name"
            "$bench" --csv "$RESULTS/$name.csv" "$@" > "$RESULTS/$name.txt" 2>&1 || true
            ;;
    esac
done

echo "done: $(ls "$RESULTS" | wc -l) files in $RESULTS/"
