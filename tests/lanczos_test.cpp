// Tests for the Lanczos spectrum estimator and the tridiagonal eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/registry.hpp"
#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "solver/lanczos.hpp"
#include "solver/pcg.hpp"

namespace symspmv::cg {
namespace {

TEST(TridiagonalEigen, DiagonalMatrixIsExact) {
    const std::vector<double> alpha = {3.0, -1.0, 7.0, 2.0};
    const std::vector<double> beta = {0.0, 0.0, 0.0};
    const auto [lmin, lmax] = tridiagonal_extreme_eigenvalues(alpha, beta);
    EXPECT_NEAR(lmin, -1.0, 1e-10);
    EXPECT_NEAR(lmax, 7.0, 1e-10);
}

TEST(TridiagonalEigen, TwoByTwoClosedForm) {
    // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
    const std::vector<double> alpha = {2.0, 2.0};
    const std::vector<double> beta = {1.0};
    const auto [lmin, lmax] = tridiagonal_extreme_eigenvalues(alpha, beta);
    EXPECT_NEAR(lmin, 1.0, 1e-10);
    EXPECT_NEAR(lmax, 3.0, 1e-10);
}

TEST(TridiagonalEigen, DiscreteLaplacianSpectrum) {
    // tridiag(-1, 2, -1) of size n has eigenvalues 2 - 2cos(k pi/(n+1)).
    const int n = 40;
    const std::vector<double> alpha(static_cast<std::size_t>(n), 2.0);
    const std::vector<double> beta(static_cast<std::size_t>(n) - 1, -1.0);
    const auto [lmin, lmax] = tridiagonal_extreme_eigenvalues(alpha, beta);
    const double pi = std::acos(-1.0);
    EXPECT_NEAR(lmin, 2.0 - 2.0 * std::cos(pi / (n + 1)), 1e-9);
    EXPECT_NEAR(lmax, 2.0 - 2.0 * std::cos(n * pi / (n + 1)), 1e-9);
}

TEST(Lanczos, DiagonalOperatorSpectrumIsRecovered) {
    Coo coo(60, 60);
    for (index_t i = 0; i < 60; ++i) coo.add(i, i, 1.0 + static_cast<value_t>(i));
    coo.canonicalize();
    ThreadPool pool(2);
    auto kernel = make_kernel(KernelKind::kCsr, coo, pool);
    const SpectrumEstimate est = estimate_spectrum(*kernel, pool, 60);
    EXPECT_NEAR(est.lambda_max, 60.0, 1e-6);
    EXPECT_NEAR(est.lambda_min, 1.0, 1e-6);
    EXPECT_NEAR(est.condition_number(), 60.0, 1e-4);
}

TEST(Lanczos, SpdMatrixYieldsPositiveEstimates) {
    ThreadPool pool(3);
    const Coo coo = gen::make_spd(gen::poisson2d(18, 18));
    auto kernel = make_kernel(KernelKind::kSssIndexing, coo, pool);
    const SpectrumEstimate est = estimate_spectrum(*kernel, pool, 40);
    EXPECT_GT(est.lambda_min, 0.0) << "SPD matrices have positive spectra";
    EXPECT_GT(est.lambda_max, est.lambda_min);
    EXPECT_GE(est.cg_iteration_bound(), 1.0);
}

TEST(Lanczos, RitzValuesStayInsideTheDiagonalDominanceBounds) {
    // make_spd sets a(i,i) = sum|offdiag| + 1, so by Gershgorin every
    // eigenvalue lies in [1, 2*max_diag].
    ThreadPool pool(2);
    const Coo coo = gen::make_spd(gen::banded_random(250, 15, 5.0, 3));
    double max_diag = 0.0;
    for (const Triplet& t : coo.entries()) {
        if (t.row == t.col) max_diag = std::max(max_diag, t.val);
    }
    auto kernel = make_kernel(KernelKind::kCsr, coo, pool);
    const SpectrumEstimate est = estimate_spectrum(*kernel, pool, 30);
    EXPECT_GE(est.lambda_min, 0.99);
    EXPECT_LE(est.lambda_max, 2.0 * max_diag + 1e-9);
}

TEST(Lanczos, BoundPredictsObservedCgIterations) {
    // The classical bound must hold: measured iterations <= bound (Ritz
    // extremes converge from inside, so widen the estimate slightly).
    ThreadPool pool(2);
    const Coo coo = gen::make_spd(gen::poisson2d(16, 16));
    auto kernel = make_kernel(KernelKind::kSssIndexing, coo, pool);
    const SpectrumEstimate est = estimate_spectrum(*kernel, pool, 60);

    std::vector<value_t> b(static_cast<std::size_t>(coo.rows()), 1.0);
    Options opts;
    opts.tolerance = 1e-8;
    opts.max_iterations = 1000;
    const Result res = solve(*kernel, pool, b, opts);
    ASSERT_TRUE(res.converged);
    EXPECT_LE(res.iterations, est.cg_iteration_bound(1e-8) * 1.5 + 5.0);
}

TEST(Lanczos, HistoryRecordingMatchesIterationCount) {
    ThreadPool pool(2);
    const Coo coo = gen::make_spd(gen::poisson2d(12, 12));
    auto kernel = make_kernel(KernelKind::kCsr, coo, pool);
    std::vector<value_t> b(static_cast<std::size_t>(coo.rows()), 1.0);
    Options opts;
    opts.record_residuals = true;
    const Result res = solve(*kernel, pool, b, opts);
    ASSERT_TRUE(res.converged);
    // history = initial residual + one entry per iteration.
    EXPECT_EQ(static_cast<int>(res.residual_history.size()), res.iterations + 1);
    for (std::size_t i = 1; i < res.residual_history.size(); ++i) {
        EXPECT_GE(res.residual_history[i], 0.0);  // exact zero = exact convergence
    }
    EXPECT_DOUBLE_EQ(res.residual_history.back(), res.residual_norm);
}

}  // namespace
}  // namespace symspmv::cg
