// The differential verification subsystem: adversarial suite health, the
// oracle sweep over every registered kernel, and the format invariant
// validators (accepting healthy structures, flagging corrupted ones).
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "csx/csx_matrix.hpp"
#include "csx/csx_sym.hpp"
#include "engine/registry.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/sss.hpp"
#include "verify/adversarial.hpp"
#include "verify/oracle.hpp"
#include "verify/validate.hpp"

namespace symspmv {
namespace {

using verify::adversarial_suite;
using verify::validate;

TEST(AdversarialSuite, CasesAreWellFormedSymmetricAndDeterministic) {
    const auto suite = adversarial_suite();
    ASSERT_GE(suite.size(), 8u);
    const auto again = adversarial_suite();
    ASSERT_EQ(suite.size(), again.size());
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const verify::AdversarialCase& c = suite[i];
        EXPECT_FALSE(c.name.empty());
        EXPECT_EQ(c.matrix.rows(), c.matrix.cols()) << c.name;
        EXPECT_TRUE(c.matrix.is_symmetric()) << c.name;
        EXPECT_TRUE(validate(c.matrix).empty()) << c.name;
        // Determinism: two generations produce the identical matrix.
        EXPECT_EQ(c.matrix.nnz(), again[i].matrix.nnz()) << c.name;
        for (index_t k = 0; k < c.matrix.nnz(); ++k) {
            ASSERT_EQ(c.matrix.entries()[static_cast<std::size_t>(k)],
                      again[i].matrix.entries()[static_cast<std::size_t>(k)])
                << c.name;
        }
    }
}

TEST(AdversarialSuite, CoversTheTargetedStructures) {
    bool has_empty_row_case = false;
    bool has_tiny = false;
    bool has_empty_matrix = false;
    for (const auto& c : adversarial_suite()) {
        if (c.matrix.nnz() == 0) has_empty_matrix = true;
        if (c.matrix.rows() < 8) has_tiny = true;
        // structurally empty row: some row index absent from all entries
        std::vector<bool> seen(static_cast<std::size_t>(c.matrix.rows()), false);
        for (const Triplet& t : c.matrix.entries()) {
            seen[static_cast<std::size_t>(t.row)] = true;
        }
        for (bool s : seen) {
            if (!s && c.matrix.rows() > 1) has_empty_row_case = true;
        }
    }
    EXPECT_TRUE(has_empty_matrix);
    EXPECT_TRUE(has_tiny);
    EXPECT_TRUE(has_empty_row_case);
}

TEST(Oracle, ReferenceAgreesWithCooSpmvWithinItsOwnBounds) {
    const Coo full = gen::make_spd(gen::banded_random(150, 20, 7.0, 5, 0.3));
    std::vector<value_t> x(150);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.01 * static_cast<double>(i) - 0.7;
    const verify::Reference ref = verify::reference_spmv(full, x, 16.0);
    std::vector<value_t> y(150, 0.0);
    full.spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_GT(ref.bound[i], 0.0);
        EXPECT_LE(std::abs(y[i] - ref.y[i]), ref.bound[i]) << "row " << i;
    }
}

/// A kernel that is wrong in one component by an amount far beyond any
/// rounding model — the oracle must flag it (meta-test of the oracle).
class BrokenKernel final : public SpmvKernel {
   public:
    explicit BrokenKernel(Coo full) : full_(std::move(full)) {}
    [[nodiscard]] std::string_view name() const override { return "broken"; }
    [[nodiscard]] index_t rows() const override { return full_.rows(); }
    [[nodiscard]] std::int64_t nnz() const override { return full_.nnz(); }
    [[nodiscard]] std::size_t footprint_bytes() const override { return 0; }
    void spmv(std::span<const value_t> x, std::span<value_t> y) override {
        full_.spmv(x, y);
        y[y.size() / 2] += 1e-3;
    }

   private:
    Coo full_;
};

TEST(Oracle, FlagsAKernelThatIsWrongInOneComponent) {
    const Coo full = gen::make_spd(gen::poisson2d(12, 12));
    BrokenKernel broken(full);
    const auto res = verify::check_kernel(broken, full, "meta");
    EXPECT_FALSE(res.pass);
    EXPECT_GT(res.worst_share, 1.0);
    EXPECT_EQ(res.worst_row, full.rows() / 2);
}

// The tentpole sweep: every registered kernel x every adversarial case x
// {1, 3, 8} threads must match the long-double reference within the
// ULP-aware componentwise bound.
TEST(Oracle, EveryRegisteredKernelPassesTheAdversarialSuite) {
    const verify::OracleReport report = verify::run_differential_oracle();
    EXPECT_TRUE(report.all_passed())
        << report.failures() << " failures:\n"
        << report.failure_lines() << '\n'
        << report.table();
    // The report is per (kernel, case, threads); every registered kind must
    // appear, and the max-ULP table must render.
    EXPECT_GE(report.results.size(),
              all_kernel_kinds().size() * adversarial_suite().size());
    EXPECT_FALSE(report.table().empty());
}

// ------------------------------------------------------------ validators --

TEST(Validators, AcceptEveryHealthyRepresentation) {
    const Coo full = gen::make_spd(gen::block_fem(30, 3, 4.0, 0.6, 9));
    const Csr csr(full);
    const Sss sss(full);
    const csx::CsxMatrix csx(csr, csx::CsxConfig{}, 4);
    const csx::CsxSymMatrix csx_sym(sss, csx::CsxConfig{}, 4);
    EXPECT_TRUE(validate(full).empty());
    EXPECT_TRUE(validate(csr).empty());
    EXPECT_TRUE(validate(sss).empty());
    EXPECT_TRUE(validate(csx).empty());
    EXPECT_TRUE(validate(csx_sym).empty());
}

TEST(Validators, AcceptAdversarialStructures) {
    // Empty rows, dense columns, denormals: the validators must accept all
    // healthy encodings of the adversarial suite too (p > rows included).
    for (const auto& c : adversarial_suite()) {
        const Csr csr(c.matrix);
        const Sss sss(c.matrix);
        EXPECT_TRUE(validate(csr).empty()) << c.name;
        EXPECT_TRUE(validate(sss).empty()) << c.name;
        if (c.matrix.rows() > 0) {
            const csx::CsxMatrix csx(csr, csx::CsxConfig{}, 8);
            const csx::CsxSymMatrix csx_sym(sss, csx::CsxConfig{}, 8);
            EXPECT_TRUE(validate(csx).empty()) << c.name;
            EXPECT_TRUE(validate(csx_sym).empty()) << c.name;
        }
    }
}

TEST(Validators, FlagUnsortedCsrColumns) {
    // The Csr constructor validates bounds and rowptr shape but not the
    // within-row column order — exactly the gap validate() covers.
    aligned_vector<index_t> rowptr = {0, 2, 3};
    aligned_vector<index_t> colind = {1, 0, 1};  // row 0: columns out of order
    aligned_vector<value_t> values = {1.0, 2.0, 3.0};
    const Csr csr(2, 2, std::move(rowptr), std::move(colind), std::move(values));
    const auto issues = validate(csr);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues.front().find("not strictly increasing"), std::string::npos)
        << issues.front();
}

TEST(Validators, FlagDuplicateCsrColumns) {
    aligned_vector<index_t> rowptr = {0, 2};
    aligned_vector<index_t> colind = {1, 1};  // duplicate column
    aligned_vector<value_t> values = {1.0, 2.0};
    const Csr csr(1, 2, std::move(rowptr), std::move(colind), std::move(values));
    EXPECT_FALSE(validate(csr).empty());
}

TEST(Validators, FlagNonCanonicalCoo) {
    Coo coo(4, 4);
    coo.add(2, 2, 1.0);
    coo.add(0, 0, 1.0);  // out of order, not canonicalized
    EXPECT_FALSE(validate(coo).empty());
}

}  // namespace
}  // namespace symspmv
