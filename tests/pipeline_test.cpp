// End-to-end pipeline tests: the full paper workflow on one matrix —
// generate -> (scramble) -> RCM -> build a symmetric kernel -> solve with
// (P)CG -> check the solution against a dense Cholesky direct solve.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "engine/registry.hpp"
#include "matrix/sss.hpp"
#include "matrix/suite.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"
#include "solver/cholesky.hpp"
#include "solver/pcg.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

TEST(Cholesky, Solves2x2Exactly) {
    Coo coo(2, 2);
    coo.add(0, 0, 4.0);
    coo.add(0, 1, 2.0);
    coo.add(1, 0, 2.0);
    coo.add(1, 1, 3.0);
    coo.canonicalize();
    const cg::DenseCholesky chol(coo);
    // A [1, 2]^T = [8, 8]^T.
    const std::vector<value_t> b = {8.0, 8.0};
    const auto x = chol.solve(b);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    // det = 4*3 - 2*2 = 8.
    EXPECT_NEAR(chol.log_determinant(), std::log(8.0), 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
    Coo coo(2, 2);
    coo.add(0, 0, 1.0);
    coo.add(0, 1, 5.0);
    coo.add(1, 0, 5.0);
    coo.add(1, 1, 1.0);  // eigenvalues 6, -4
    coo.canonicalize();
    EXPECT_THROW(cg::DenseCholesky{coo}, InvalidArgument);
}

class PipelineSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineSuite, GenerateReorderSolveVerify) {
    // Tiny scale keeps the dense O(n^3) oracle tractable.
    Coo full = gen::generate_suite_matrix(GetParam(), 0.0008);
    if (full.rows() > 900) GTEST_SKIP() << "dense oracle too large at this scale";
    ASSERT_TRUE(full.is_symmetric());

    // Scramble, then recover locality with RCM (the §V.D pipeline).
    std::vector<index_t> shuffle_perm(static_cast<std::size_t>(full.rows()));
    for (std::size_t i = 0; i < shuffle_perm.size(); ++i) {
        shuffle_perm[i] = static_cast<index_t>(i);
    }
    std::mt19937_64 rng(7);
    std::ranges::shuffle(shuffle_perm, rng);
    full = permute_symmetric(full, shuffle_perm);
    const auto rcm = rcm_permutation(full);
    const Coo reordered = permute_symmetric(full, rcm);

    const cg::DenseCholesky direct(reordered);
    const auto b = random_vector(reordered.rows(), 13);
    const auto x_exact = direct.solve(b);

    ThreadPool pool(4);
    const Sss sss(reordered);
    for (KernelKind kind : {KernelKind::kSssIndexing, KernelKind::kCsxSym}) {
        auto kernel = make_kernel(kind, reordered, pool);
        auto precond = cg::make_preconditioner("jacobi", sss, pool);
        cg::Options opts;
        opts.tolerance = 1e-12;
        opts.max_iterations = 5000;
        const cg::PcgResult res = cg::pcg_solve(*kernel, *precond, pool, b, opts);
        ASSERT_TRUE(res.base.converged) << to_string(kind);
        double max_err = 0.0;
        for (std::size_t i = 0; i < x_exact.size(); ++i) {
            max_err = std::max(max_err, std::abs(res.base.x[i] - x_exact[i]));
        }
        EXPECT_LT(max_err, 1e-7) << to_string(kind) << " after " << res.base.iterations
                                 << " iterations";
    }
}

INSTANTIATE_TEST_SUITE_P(Matrices, PipelineSuite,
                         ::testing::Values("parabolic_fem", "consph", "bmw7st_1", "nd12k",
                                           "crankseg_2"));

}  // namespace
}  // namespace symspmv
