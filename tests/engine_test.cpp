// Engine layer: ExecutionContext, MatrixBundle, KernelFactory and the
// per-thread PhaseProfiler.
//
// The load-bearing assertion for the refactor lives here: a full
// all_kernel_kinds() factory sweep must run each COO->CSR/SSS/lower-CSR
// conversion at most once (build_counts()), and every factory-built kernel
// must compute the same product as the one-shot make_kernel() path.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/profiler.hpp"
#include "engine/registry.hpp"
#include "matrix/generators.hpp"

namespace symspmv::engine {
namespace {

using symspmv::test::random_vector;

Coo test_matrix() { return gen::make_spd(gen::block_fem(60, 3, 6.0, 0.1, 7)); }

template <typename T>
bool spans_equal(std::span<const T> a, std::span<const T> b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

// ---------------------------------------------------------------- bundle --

TEST(MatrixBundle, CachesEveryRepresentation) {
    const MatrixBundle bundle(test_matrix());
    EXPECT_EQ(bundle.build_counts().total(), 0) << "bundle must be lazy";

    const Csr* csr = &bundle.csr();
    const Sss* sss = &bundle.sss();
    const Csr* lower = &bundle.lower_csr();
    const MatrixProperties* props = &bundle.properties();

    // Repeated access is a cache hit on the same object.
    EXPECT_EQ(csr, &bundle.csr());
    EXPECT_EQ(sss, &bundle.sss());
    EXPECT_EQ(lower, &bundle.lower_csr());
    EXPECT_EQ(props, &bundle.properties());

    const BundleBuildCounts counts = bundle.build_counts();
    EXPECT_EQ(counts.csr, 1);
    EXPECT_EQ(counts.sss, 1);
    EXPECT_EQ(counts.lower_csr, 1);
    EXPECT_EQ(counts.properties, 1);
}

TEST(MatrixBundle, RepresentationsMatchDirectConversion) {
    const Coo coo = test_matrix();
    const MatrixBundle bundle = MatrixBundle::view(coo);

    const Csr direct_csr(coo);
    EXPECT_TRUE(spans_equal(direct_csr.rowptr(), bundle.csr().rowptr()));
    EXPECT_TRUE(spans_equal(direct_csr.colind(), bundle.csr().colind()));
    EXPECT_TRUE(spans_equal(direct_csr.values(), bundle.csr().values()));

    const Sss direct_sss(coo);
    EXPECT_TRUE(spans_equal(direct_sss.rowptr(), bundle.sss().rowptr()));
    EXPECT_TRUE(spans_equal(direct_sss.colind(), bundle.sss().colind()));
    EXPECT_TRUE(spans_equal(direct_sss.values(), bundle.sss().values()));
    EXPECT_TRUE(spans_equal(direct_sss.dvalues(), bundle.sss().dvalues()));

    const Csr direct_lower(coo.lower());
    EXPECT_TRUE(spans_equal(direct_lower.rowptr(), bundle.lower_csr().rowptr()));
    EXPECT_TRUE(spans_equal(direct_lower.colind(), bundle.lower_csr().colind()));
    EXPECT_TRUE(spans_equal(direct_lower.values(), bundle.lower_csr().values()));
}

TEST(MatrixBundle, MoveKeepsHandedOutReferencesValid) {
    MatrixBundle a(test_matrix());
    const Csr* csr = &a.csr();
    const MatrixBundle b = std::move(a);
    EXPECT_EQ(csr, &b.csr());
    EXPECT_EQ(b.build_counts().csr, 1);
}

// --------------------------------------------------------------- factory --

TEST(KernelFactory, SweepConvertsEachRepresentationAtMostOnce) {
    const MatrixBundle bundle(test_matrix());
    ExecutionContext ctx(4);
    const KernelFactory factory(bundle, ctx);

    std::vector<value_t> y(static_cast<std::size_t>(bundle.coo().rows()));
    const auto x = random_vector(bundle.coo().rows(), std::uint64_t{3});
    for (KernelKind kind : all_kernel_kinds()) {
        const KernelPtr kernel = factory.make(kind);
        kernel->spmv(x, y);  // every kernel is usable, not just constructible
    }

    // The acceptance criterion of the refactor: the whole sweep performs
    // each shared conversion at most once.
    const BundleBuildCounts counts = bundle.build_counts();
    EXPECT_LE(counts.csr, 1);
    EXPECT_LE(counts.sss, 1);
    EXPECT_LE(counts.lower_csr, 1);
    EXPECT_LE(counts.properties, 1);
}

TEST(KernelFactory, MatchesMakeKernelForEveryKind) {
    const Coo coo = test_matrix();
    const MatrixBundle bundle = MatrixBundle::view(coo);
    ExecutionContext ctx(3);
    const KernelFactory factory(bundle, ctx);

    const auto x = random_vector(coo.rows(), std::uint64_t{11});
    std::vector<value_t> y_factory(x.size());
    std::vector<value_t> y_direct(x.size());
    for (KernelKind kind : all_kernel_kinds()) {
        factory.make(kind)->spmv(x, y_factory);
        make_kernel(kind, coo, ctx)->spmv(x, y_direct);
        for (std::size_t i = 0; i < x.size(); ++i) {
            ASSERT_DOUBLE_EQ(y_factory[i], y_direct[i])
                << to_string(kind) << " row " << i;
        }
    }
}

// --------------------------------------------------------------- context --

TEST(ExecutionContext, PartitionFollowsThePolicy) {
    const MatrixBundle bundle(test_matrix());
    const auto rowptr = bundle.csr().rowptr();

    ExecutionContext by_nnz(ContextOptions{.threads = 4});
    EXPECT_EQ(by_nnz.threads(), 4);
    const auto nnz_parts = by_nnz.partition(rowptr);
    ASSERT_EQ(nnz_parts.size(), 4u);
    EXPECT_EQ(nnz_parts, split_by_nnz(rowptr, 4));

    ExecutionContext even(
        ContextOptions{.threads = 4, .partition = PartitionPolicy::kEvenRows});
    const auto even_parts = even.partition(rowptr);
    EXPECT_EQ(even_parts, split_even(static_cast<index_t>(rowptr.size() - 1), 4));

    // Partitions tile [0, rows) without gaps in both policies.
    for (const auto& parts : {nnz_parts, even_parts}) {
        index_t next = 0;
        for (const RowRange& p : parts) {
            EXPECT_EQ(p.begin, next);
            next = p.end;
        }
        EXPECT_EQ(next, static_cast<index_t>(rowptr.size() - 1));
    }
}

TEST(MatrixBundle, ApplyPlacementPreservesEveryRepresentation) {
    // Re-homing moves pages, never values: after apply_placement the bundle's
    // representations are element-for-element what a fresh conversion builds.
    const Coo coo = test_matrix();
    const MatrixBundle bundle{Coo(coo)};
    ExecutionContext ctx(3);
    bundle.sss();  // build before placement so the SSS arrays get re-homed too
    const auto parts = ctx.partition(bundle.csr().rowptr());
    const int rehomed = bundle.apply_placement(parts, ctx.pool());
    EXPECT_GE(rehomed, 2);

    const Csr direct_csr(coo);
    EXPECT_TRUE(spans_equal(direct_csr.rowptr(), bundle.csr().rowptr()));
    EXPECT_TRUE(spans_equal(direct_csr.colind(), bundle.csr().colind()));
    EXPECT_TRUE(spans_equal(direct_csr.values(), bundle.csr().values()));
    const Sss direct_sss(coo);
    EXPECT_TRUE(spans_equal(direct_sss.rowptr(), bundle.sss().rowptr()));
    EXPECT_TRUE(spans_equal(direct_sss.colind(), bundle.sss().colind()));
    EXPECT_TRUE(spans_equal(direct_sss.values(), bundle.sss().values()));
    EXPECT_TRUE(spans_equal(direct_sss.dvalues(), bundle.sss().dvalues()));
}

TEST(KernelFactory, PartitionedPlacementKeepsKernelsCorrect) {
    // The factory applies kernel-level placement (matrix copy + local
    // vectors) when the context asks for it; results must be bit-identical
    // to the unplaced kernel.
    const Coo coo = test_matrix();
    const MatrixBundle bundle = MatrixBundle::view(coo);
    ExecutionContext plain(ContextOptions{.threads = 3});
    ExecutionContext placed(ContextOptions{
        .threads = 3, .placement = PlacementPolicy::kPartitioned});
    const KernelFactory plain_factory(bundle, plain);
    const KernelFactory placed_factory(bundle, placed);

    const auto x = random_vector(coo.rows(), std::uint64_t{17});
    std::vector<value_t> y_plain(x.size()), y_placed(x.size());
    for (KernelKind kind : {KernelKind::kCsr, KernelKind::kSssNaive,
                            KernelKind::kSssEffective, KernelKind::kSssIndexing,
                            KernelKind::kCsxSym}) {
        plain_factory.make(kind)->spmv(x, y_plain);
        placed_factory.make(kind)->spmv(x, y_placed);
        for (std::size_t i = 0; i < x.size(); ++i) {
            ASSERT_DOUBLE_EQ(y_placed[i], y_plain[i]) << to_string(kind) << " row " << i;
        }
    }
}

TEST(KernelFactory, PrefetchDistanceDoesNotChangeResults) {
    const Coo coo = test_matrix();
    const MatrixBundle bundle = MatrixBundle::view(coo);
    ExecutionContext ctx(ContextOptions{.threads = 2});
    KernelFactory factory(bundle, ctx);
    const auto x = random_vector(coo.rows(), std::uint64_t{23});
    std::vector<value_t> y_off(x.size()), y_on(x.size());
    for (KernelKind kind : {KernelKind::kSssNaive, KernelKind::kSssIndexing,
                            KernelKind::kCsxSym}) {
        factory.set_prefetch_distance(0);
        factory.make(kind)->spmv(x, y_off);
        factory.set_prefetch_distance(16);
        factory.make(kind)->spmv(x, y_on);
        for (std::size_t i = 0; i < x.size(); ++i) {
            ASSERT_DOUBLE_EQ(y_on[i], y_off[i]) << to_string(kind) << " row " << i;
        }
    }
}

TEST(ExecutionContext, AllocateVectorHonorsSizeForEveryPlacement) {
    for (PlacementPolicy placement : {PlacementPolicy::kNone, PlacementPolicy::kInterleave,
                                      PlacementPolicy::kPartitioned}) {
        ExecutionContext ctx(ContextOptions{.threads = 2, .placement = placement});
        auto v = ctx.allocate_vector(1000);
        ASSERT_EQ(v.size(), 1000u);
        std::fill(v.begin(), v.end(), 1.0);  // pages are writable
    }
}

TEST(ExecutionContext, ConvertsToItsOwnThreadPool) {
    ExecutionContext ctx(2);
    ThreadPool& pool = ctx;  // the compatibility bridge for solver signatures
    EXPECT_EQ(&pool, &ctx.pool());
    EXPECT_EQ(pool.size(), 2);
}

// -------------------------------------------------------------- profiler --

TEST(PhaseProfiler, AccumulatesAndSummarizesPerThread) {
    PhaseProfiler profiler(3);
    profiler.record(0, Phase::kMultiply, 1.0);
    profiler.record(1, Phase::kMultiply, 2.0);
    profiler.record(2, Phase::kMultiply, 3.0);
    profiler.record(1, Phase::kReduction, 0.5);
    profiler.record(99, Phase::kMultiply, 1e9);  // out-of-range tid: ignored
    profiler.begin_op();

    EXPECT_DOUBLE_EQ(profiler.seconds(1, Phase::kMultiply), 2.0);
    EXPECT_EQ(profiler.ops(), 1u);

    const PhaseStats mult = profiler.stats(Phase::kMultiply);
    EXPECT_DOUBLE_EQ(mult.min_seconds, 1.0);
    EXPECT_DOUBLE_EQ(mult.max_seconds, 3.0);
    EXPECT_DOUBLE_EQ(mult.mean_seconds, 2.0);
    EXPECT_DOUBLE_EQ(mult.total_seconds, 6.0);
    EXPECT_DOUBLE_EQ(mult.imbalance, 0.5);  // 3/2 - 1
    EXPECT_EQ(mult.samples, 3u);

    // Threads that never recorded a phase count as idle (0 s).
    const PhaseStats red = profiler.stats(Phase::kReduction);
    EXPECT_DOUBLE_EQ(red.min_seconds, 0.0);
    EXPECT_DOUBLE_EQ(red.max_seconds, 0.5);
    EXPECT_EQ(red.samples, 1u);

    profiler.reset();
    EXPECT_EQ(profiler.ops(), 0u);
    EXPECT_DOUBLE_EQ(profiler.stats(Phase::kMultiply).total_seconds, 0.0);
}

TEST(PhaseProfiler, RecordsEveryPhaseOfASymmetricKernel) {
    const MatrixBundle bundle(test_matrix());
    ExecutionContext ctx(4);
    const KernelFactory factory(bundle, ctx);
    const KernelPtr kernel = factory.make(KernelKind::kSssIndexing);

    PhaseProfiler profiler(ctx.threads());
    kernel->set_profiler(&profiler);
    const auto x = random_vector(bundle.coo().rows(), std::uint64_t{5});
    std::vector<value_t> y(x.size());
    profiler.begin_op();
    kernel->spmv(x, y);
    kernel->set_profiler(nullptr);

    for (Phase phase : {Phase::kMultiply, Phase::kBarrier, Phase::kReduction}) {
        const PhaseStats s = profiler.stats(phase);
        EXPECT_EQ(s.samples, 4u) << to_string(phase) << ": one sample per worker";
        EXPECT_GE(s.min_seconds, 0.0);
    }

    // The profiled product is still correct.
    std::vector<value_t> reference(x.size());
    bundle.csr().spmv(x, reference);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(y[i], reference[i], 1e-10 * std::abs(reference[i]) + 1e-12);
    }
}

TEST(PhaseProfiler, ImbalanceReportCoversRecordedPhasesOnly) {
    PhaseProfiler profiler(2);
    EXPECT_TRUE(imbalance_report(profiler).empty()) << "nothing recorded, nothing reported";

    profiler.record(0, Phase::kMultiply, 1.0);
    profiler.record(1, Phase::kMultiply, 3.0);
    profiler.record(0, Phase::kReduction, 0.25);
    const std::string report = imbalance_report(profiler);
    EXPECT_NE(report.find(to_string(Phase::kMultiply)), std::string::npos);
    EXPECT_NE(report.find(to_string(Phase::kReduction)), std::string::npos);
    EXPECT_EQ(report.find(to_string(Phase::kBarrier)), std::string::npos)
        << "phases nobody recorded stay out of the report";
}

}  // namespace
}  // namespace symspmv::engine
