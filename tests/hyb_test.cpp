// Tests for the HYB (ELL + COO tail) format.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <vector>

#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "matrix/hyb.hpp"
#include "spmv/baseline_kernels.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

TEST(Hyb, QuantileExtremes) {
    const Coo coo = gen::make_spd(gen::power_law_circuit(300, 3.0, 3));
    const Hyb all_ell(coo, 1.0);
    EXPECT_EQ(all_ell.tail_nnz(), 0);
    EXPECT_EQ(all_ell.ell_nnz(), coo.nnz());
    const Hyb mostly_coo(coo, 0.0);
    EXPECT_GT(mostly_coo.tail_nnz(), 0);
    EXPECT_LT(mostly_coo.ell_width(), all_ell.ell_width());
}

TEST(Hyb, SplitConservesEveryNonZero) {
    const Coo coo = gen::make_spd(gen::power_law_circuit(400, 4.0, 5));
    const Hyb hyb(coo, 0.9);
    EXPECT_EQ(hyb.ell_nnz() + hyb.tail_nnz(), coo.nnz());
    EXPECT_GT(hyb.tail_nnz(), 0) << "power-law hubs must spill";
}

TEST(Hyb, TamesEllpackPaddingOnPowerLawMatrix) {
    const Coo coo = gen::make_spd(gen::power_law_circuit(500, 3.0, 7));
    const Ellpack ell(coo);
    const Hyb hyb(coo, 0.9);
    EXPECT_LT(hyb.ell_padding_ratio(), ell.padding_ratio() / 2.0);
    EXPECT_LT(hyb.size_bytes(), ell.size_bytes());
}

TEST(Hyb, SerialSpmvMatchesOracle) {
    const Coo coo = gen::make_spd(gen::power_law_circuit(350, 4.0, 9));
    for (double q : {0.0, 0.5, 0.9, 1.0}) {
        const Hyb hyb(coo, q);
        const auto x = random_vector(coo.rows(), 1);
        std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
        std::vector<value_t> y_ref(y.size());
        hyb.spmv(x, y);
        coo.spmv(x, y_ref);
        expect_near_vectors(y_ref, y);
    }
}

TEST(Hyb, RegularMatrixHasNoTail) {
    const Coo coo = gen::make_spd(gen::poisson2d(15, 15));  // every row <= 5 nnz
    const Hyb hyb(coo, 0.9);
    EXPECT_EQ(hyb.tail_nnz(), 0);
}

class HybThreads : public ::testing::TestWithParam<int> {};

TEST_P(HybThreads, MtKernelMatchesOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::power_law_circuit(450, 4.0, 11));
    HybMtKernel kernel(Hyb(coo), pool);
    const auto x = random_vector(coo.rows(), 2);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(y.size());
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

INSTANTIATE_TEST_SUITE_P(Threads, HybThreads, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace symspmv
