// Tests for ThreadPool CPU pinning (§V.A: the paper binds threads to
// specific logical processors).
#include <gtest/gtest.h>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

#include <atomic>

#include "core/thread_pool.hpp"

namespace symspmv {
namespace {

TEST(ThreadPoolAffinity, UnpinnedPoolReportsUnpinned) {
    ThreadPool pool(3);
    pool.run([](int) {});
    for (int t = 0; t < 3; ++t) EXPECT_FALSE(pool.pinned(t));
}

TEST(ThreadPoolAffinity, PinnedPoolRunsJobsCorrectly) {
    ThreadPool pool(4, /*pin_threads=*/true);
    std::atomic<int> sum{0};
    pool.run([&](int tid) { sum += tid; });
    EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

#ifdef __linux__
TEST(ThreadPoolAffinity, PinnedWorkersHaveSingleCpuMask) {
    ThreadPool pool(2, /*pin_threads=*/true);
    std::atomic<int> single_cpu_workers{0};
    std::atomic<int> pinned_workers{0};
    pool.run([&](int tid) {
        cpu_set_t set;
        if (::pthread_getaffinity_np(::pthread_self(), sizeof(set), &set) == 0 &&
            CPU_COUNT(&set) == 1) {
            ++single_cpu_workers;
        }
        (void)tid;
    });
    for (int t = 0; t < 2; ++t) {
        if (pool.pinned(t)) ++pinned_workers;
    }
    // Pinning may legitimately fail in restricted sandboxes; when the pool
    // reports success the mask must actually be a single CPU.
    EXPECT_EQ(single_cpu_workers.load(), pinned_workers.load());
}
#endif

}  // namespace
}  // namespace symspmv
