// Tests for the BCSR format, its fill-ratio model and the autotuner.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <vector>

#include "bcsr/bcsr.hpp"
#include "bcsr/bcsr_kernels.hpp"
#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"

namespace symspmv::bcsr {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

/// A matrix whose non-zeros form perfectly aligned dense 3x3 tiles.
Coo aligned_block_matrix(index_t node_count) {
    Coo coo(node_count * 3, node_count * 3);
    for (index_t node = 0; node < node_count; ++node) {
        for (int i = 0; i < 3; ++i) {
            for (int j = 0; j < 3; ++j) {
                const index_t r = node * 3 + i;
                const index_t c = node * 3 + j;
                coo.add(r, c, r == c ? 10.0 : 1.0);
            }
        }
    }
    coo.canonicalize();
    return coo;
}

TEST(BcsrFill, UnitBlocksHaveNoFill) {
    const Coo coo = gen::make_spd(gen::banded_random(150, 10, 5.0, 3));
    EXPECT_DOUBLE_EQ(fill_ratio(coo, {1, 1}), 1.0);
}

TEST(BcsrFill, AlignedBlockMatrixHasNoFillAt3x3) {
    const Coo coo = aligned_block_matrix(40);
    EXPECT_DOUBLE_EQ(fill_ratio(coo, {3, 3}), 1.0);
    // A mismatched 2x2 grid must introduce fill on the 3x3 tiles.
    EXPECT_GT(fill_ratio(coo, {2, 2}), 1.0);
}

TEST(BcsrFill, ScatteredMatrixFillGrowsWithBlockArea) {
    const Coo coo = gen::make_spd(gen::banded_random(300, 100, 4.0, 5, 0.8));
    const double f22 = fill_ratio(coo, {2, 2});
    const double f44 = fill_ratio(coo, {4, 4});
    EXPECT_GT(f22, 1.0);
    EXPECT_GT(f44, f22);
}

TEST(BcsrAutotune, PicksExactBlockShapeForAlignedBlocks) {
    const Coo coo = aligned_block_matrix(60);
    EXPECT_EQ(choose_block_size(coo), (BlockShape{3, 3}));
}

TEST(BcsrAutotune, PicksSmallBlocksForScatteredMatrix) {
    const Coo coo = gen::make_spd(gen::power_law_circuit(400, 3.0, 9));
    const BlockShape s = choose_block_size(coo);
    EXPECT_LE(s.r * s.c, 2) << "scattered matrices cannot afford fill";
}

TEST(BcsrAutotune, SampledChoiceMatchesFullScanOnRegularMatrix) {
    const Coo coo = aligned_block_matrix(200);
    EXPECT_EQ(choose_block_size(coo, 0.25), choose_block_size(coo, 1.0));
}

TEST(BcsrAutotune, PredictedBytesMatchesConstructedMatrix) {
    const Coo coo = gen::make_spd(gen::banded_random(220, 15, 6.0, 13));
    for (const BlockShape shape : {BlockShape{1, 1}, BlockShape{2, 2}, BlockShape{3, 2}}) {
        const BcsrMatrix m(coo, shape);
        EXPECT_EQ(predicted_bytes(coo, shape), m.size_bytes()) << shape.r << "x" << shape.c;
    }
}

TEST(BcsrMatrix, StoredElementsMatchFillRatio) {
    const Coo coo = gen::make_spd(gen::banded_random(180, 12, 5.0, 17));
    const BcsrMatrix m(coo, {2, 3});
    EXPECT_DOUBLE_EQ(m.fill(), fill_ratio(coo, {2, 3}));
    EXPECT_EQ(m.stored_elements(), m.blocks() * 6);
}

class BcsrShapes : public ::testing::TestWithParam<BlockShape> {};

TEST_P(BcsrShapes, SerialSpmvMatchesCooOracle) {
    const Coo coo = gen::make_spd(gen::banded_random(233, 18, 6.0, 19, 0.2));
    const BcsrMatrix m(coo, GetParam());
    const auto x = random_vector(coo.rows(), 1);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    m.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BcsrShapes,
                         ::testing::Values(BlockShape{1, 1}, BlockShape{1, 2}, BlockShape{2, 1},
                                           BlockShape{2, 2}, BlockShape{3, 3}, BlockShape{2, 4},
                                           BlockShape{4, 4}, BlockShape{6, 3}, BlockShape{8, 8}),
                         [](const auto& info) {
                             return std::to_string(info.param.r) + "x" +
                                    std::to_string(info.param.c);
                         });

class BcsrThreads : public ::testing::TestWithParam<int> {};

TEST_P(BcsrThreads, MtKernelMatchesOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::block_fem(80, 3, 4.0, 0.6, 23));
    BcsrMtKernel kernel(BcsrMatrix(coo, choose_block_size(coo)), pool);
    const auto x = random_vector(coo.rows(), 2);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

INSTANTIATE_TEST_SUITE_P(Threads, BcsrThreads, ::testing::Values(1, 2, 3, 5, 8));

TEST(BcsrMatrix, TailRowsAndColumnsAreHandled) {
    // 10x10 with 3x3 blocks: both grids have a ragged tail.
    const Coo coo = gen::make_spd(gen::poisson2d(10, 1));  // 10x10 tridiagonal
    const BcsrMatrix m(coo, {3, 3});
    const auto x = random_vector(10, 3);
    std::vector<value_t> y(10);
    std::vector<value_t> y_ref(10);
    m.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST(BcsrMatrix, EmptyMatrix) {
    const Coo coo(7, 7);
    const BcsrMatrix m(coo, {2, 2});
    EXPECT_EQ(m.blocks(), 0);
    std::vector<value_t> y(7, 5.0);
    const auto x = random_vector(7, 4);
    m.spmv(x, y);
    for (value_t v : y) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace symspmv::bcsr
