// Tests for the parallel BLAS-1 operations.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/error.hpp"
#include "solver/blas1.hpp"

namespace symspmv {
namespace {

std::vector<value_t> iota_vector(std::size_t n, value_t start) {
    std::vector<value_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = start + static_cast<value_t>(i);
    return v;
}

TEST(Blas1, DotMatchesSerial) {
    ThreadPool pool(4);
    const auto x = iota_vector(1000, 1.0);
    const auto y = iota_vector(1000, 2.0);
    EXPECT_DOUBLE_EQ(blas1::dot(pool, x, y), blas1::serial::dot(x, y));
}

TEST(Blas1, DotHandlesSmallAndEmptyVectors) {
    ThreadPool pool(8);
    const std::vector<value_t> x = {3.0};
    const std::vector<value_t> y = {4.0};
    EXPECT_DOUBLE_EQ(blas1::dot(pool, x, y), 12.0);
    const std::vector<value_t> none;
    EXPECT_DOUBLE_EQ(blas1::dot(pool, none, none), 0.0);
}

TEST(Blas1, AxpyMatchesSerial) {
    ThreadPool pool(3);
    const auto x = iota_vector(777, 1.0);
    auto y1 = iota_vector(777, -3.0);
    auto y2 = y1;
    blas1::axpy(pool, 2.5, x, y1);
    blas1::serial::axpy(2.5, x, y2);
    EXPECT_EQ(y1, y2);
}

TEST(Blas1, XpbyComputesCgUpdate) {
    ThreadPool pool(2);
    const std::vector<value_t> r = {1.0, 2.0, 3.0};
    std::vector<value_t> p = {10.0, 20.0, 30.0};
    blas1::xpby(pool, r, 0.5, p);  // p = r + 0.5 p
    EXPECT_EQ(p, (std::vector<value_t>{6.0, 12.0, 18.0}));
}

TEST(Blas1, CopyAndZero) {
    ThreadPool pool(4);
    const auto x = iota_vector(100, 5.0);
    std::vector<value_t> y(100, -1.0);
    blas1::copy(pool, x, y);
    EXPECT_EQ(y, x);
    blas1::zero(pool, y);
    for (value_t v : y) EXPECT_EQ(v, 0.0);
}

TEST(Blas1, Norm2) {
    ThreadPool pool(2);
    const std::vector<value_t> x = {3.0, 4.0};
    EXPECT_DOUBLE_EQ(blas1::norm2(pool, x), 5.0);
}

TEST(Blas1, SizeMismatchThrows) {
    ThreadPool pool(2);
    const std::vector<value_t> x(3), y(4);
    EXPECT_THROW(blas1::dot(pool, x, y), InternalError);
    std::vector<value_t> z(4);
    EXPECT_THROW(blas1::axpy(pool, 1.0, x, z), InternalError);
}

TEST(Blas1, ResultsAreThreadCountInvariant) {
    // Partial sums are combined in thread order, so the result must be
    // deterministic for a fixed thread count and identical across counts up
    // to reassociation error.
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> x(4096), y(4096);
    for (auto& v : x) v = dist(rng);
    for (auto& v : y) v = dist(rng);
    ThreadPool p1(1);
    const value_t d1 = blas1::dot(p1, x, y);
    for (int t : {2, 4, 8}) {
        ThreadPool pt(t);
        EXPECT_NEAR(blas1::dot(pt, x, y), d1, 1e-10 * std::abs(d1) + 1e-12);
        EXPECT_EQ(blas1::dot(pt, x, y), blas1::dot(pt, x, y));  // deterministic
    }
}

}  // namespace
}  // namespace symspmv
