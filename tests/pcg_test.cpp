// Tests for the preconditioners and the preconditioned CG solver.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <vector>

#include "engine/registry.hpp"
#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "matrix/sss.hpp"
#include "solver/pcg.hpp"
#include "solver/precond.hpp"

namespace symspmv::cg {
namespace {

using symspmv::test::random_vector;

/// ||b - A x|| via the COO oracle.
double residual_norm(const Coo& a, std::span<const value_t> x, std::span<const value_t> b) {
    std::vector<value_t> ax(b.size());
    a.spmv(x, ax);
    double s = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        const double d = b[i] - ax[i];
        s += d * d;
    }
    return std::sqrt(s);
}

TEST(Preconditioner, IdentityCopies) {
    IdentityPreconditioner pc;
    const std::vector<value_t> r = {1.0, -2.0, 3.5};
    std::vector<value_t> z(3);
    pc.apply(r, z);
    EXPECT_EQ(z, r);
}

TEST(Preconditioner, JacobiDividesByDiagonal) {
    ThreadPool pool(2);
    Coo coo(3, 3);
    coo.add(0, 0, 2.0);
    coo.add(1, 1, 4.0);
    coo.add(2, 2, 8.0);
    coo.canonicalize();
    const Sss sss(coo);
    JacobiPreconditioner pc(sss, pool);
    const std::vector<value_t> r = {2.0, 2.0, 2.0};
    std::vector<value_t> z(3);
    pc.apply(r, z);
    EXPECT_DOUBLE_EQ(z[0], 1.0);
    EXPECT_DOUBLE_EQ(z[1], 0.5);
    EXPECT_DOUBLE_EQ(z[2], 0.25);
}

TEST(Preconditioner, SsorSolvesMzEqualsRExactly) {
    // Verify M z = r by explicitly multiplying z with
    // M = (1/(w(2-w))) (D + wL) D^{-1} (D + wL)^T on a small matrix.
    const Coo coo = gen::make_spd(gen::poisson2d(5, 5));
    const Sss sss(coo);
    const double w = 1.3;
    SsorPreconditioner pc(sss, w);
    const auto r = random_vector(sss.rows(), 1);
    std::vector<value_t> z(r.size());
    pc.apply(r, z);

    // u = (D + wL)^T z   (dense computation from the SSS arrays).
    const index_t n = sss.rows();
    std::vector<value_t> u(static_cast<std::size_t>(n), 0.0);
    for (index_t i = 0; i < n; ++i) {
        u[static_cast<std::size_t>(i)] += sss.dvalues()[static_cast<std::size_t>(i)] *
                                          z[static_cast<std::size_t>(i)];
        for (index_t j = sss.rowptr()[static_cast<std::size_t>(i)];
             j < sss.rowptr()[static_cast<std::size_t>(i) + 1]; ++j) {
            const index_t c = sss.colind()[static_cast<std::size_t>(j)];
            u[static_cast<std::size_t>(c)] +=
                w * sss.values()[static_cast<std::size_t>(j)] * z[static_cast<std::size_t>(i)];
        }
    }
    // v = D^{-1} u, then m = (D + wL) v, then m /= w(2-w).
    std::vector<value_t> v(u);
    for (index_t i = 0; i < n; ++i) {
        v[static_cast<std::size_t>(i)] /= sss.dvalues()[static_cast<std::size_t>(i)];
    }
    std::vector<value_t> m(static_cast<std::size_t>(n), 0.0);
    for (index_t i = 0; i < n; ++i) {
        m[static_cast<std::size_t>(i)] += sss.dvalues()[static_cast<std::size_t>(i)] *
                                          v[static_cast<std::size_t>(i)];
        for (index_t j = sss.rowptr()[static_cast<std::size_t>(i)];
             j < sss.rowptr()[static_cast<std::size_t>(i) + 1]; ++j) {
            const index_t c = sss.colind()[static_cast<std::size_t>(j)];
            m[static_cast<std::size_t>(i)] +=
                w * sss.values()[static_cast<std::size_t>(j)] * v[static_cast<std::size_t>(c)];
        }
    }
    for (index_t i = 0; i < n; ++i) {
        m[static_cast<std::size_t>(i)] /= w * (2.0 - w);
        EXPECT_NEAR(m[static_cast<std::size_t>(i)], r[static_cast<std::size_t>(i)], 1e-10)
            << "row " << i;
    }
}

TEST(Preconditioner, FactoryResolvesNames) {
    ThreadPool pool(1);
    const Sss sss(gen::make_spd(gen::poisson2d(4, 4)));
    EXPECT_EQ(make_preconditioner("none", sss, pool)->name(), "none");
    EXPECT_EQ(make_preconditioner("jacobi", sss, pool)->name(), "Jacobi");
    EXPECT_EQ(make_preconditioner("ssor", sss, pool)->name(), "SSOR");
    EXPECT_ANY_THROW(make_preconditioner("ilu", sss, pool));
}

class PcgSolve : public ::testing::TestWithParam<const char*> {};

TEST_P(PcgSolve, ConvergesToTrueSolution) {
    ThreadPool pool(4);
    const Coo coo = gen::make_spd(gen::poisson2d(16, 16));
    const Sss sss(coo);
    auto kernel = make_kernel(KernelKind::kSssIndexing, coo, pool);
    auto pc = make_preconditioner(GetParam(), sss, pool);
    const auto b = random_vector(coo.rows(), 2);
    Options opts;
    opts.max_iterations = 2000;
    opts.tolerance = 1e-10;
    const PcgResult res = pcg_solve(*kernel, *pc, pool, b, opts);
    EXPECT_TRUE(res.base.converged) << GetParam();
    EXPECT_LT(residual_norm(coo, res.base.x, b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Preconds, PcgSolve, ::testing::Values("none", "jacobi", "ssor"));

TEST(Pcg, IdentityMatchesPlainCgIterationForIteration) {
    ThreadPool pool(2);
    const Coo coo = gen::make_spd(gen::banded_random(200, 10, 5.0, 3));
    auto kernel = make_kernel(KernelKind::kCsr, coo, pool);
    IdentityPreconditioner pc;
    const auto b = random_vector(coo.rows(), 3);
    Options opts;
    opts.max_iterations = 300;
    opts.tolerance = 1e-9;
    const Result plain = solve(*kernel, pool, b, opts);
    const PcgResult pcg = pcg_solve(*kernel, pc, pool, b, opts);
    EXPECT_EQ(plain.iterations, pcg.base.iterations);
    ASSERT_EQ(plain.x.size(), pcg.base.x.size());
    for (std::size_t i = 0; i < plain.x.size(); ++i) {
        EXPECT_NEAR(plain.x[i], pcg.base.x[i], 1e-12);
    }
}

TEST(Pcg, SsorReducesIterationCountOnStencil) {
    // The whole point of preconditioning: fewer iterations than plain CG.
    ThreadPool pool(2);
    const Coo coo = gen::make_spd(gen::poisson2d(24, 24));
    const Sss sss(coo);
    auto kernel = make_kernel(KernelKind::kSssIndexing, coo, pool);
    const auto b = random_vector(coo.rows(), 4);
    Options opts;
    opts.max_iterations = 3000;
    opts.tolerance = 1e-9;

    IdentityPreconditioner none;
    SsorPreconditioner ssor(sss, 1.0);
    const PcgResult plain = pcg_solve(*kernel, none, pool, b, opts);
    const PcgResult pcond = pcg_solve(*kernel, ssor, pool, b, opts);
    ASSERT_TRUE(plain.base.converged);
    ASSERT_TRUE(pcond.base.converged);
    EXPECT_LT(pcond.base.iterations, plain.base.iterations);
}

TEST(Pcg, TracksPrecondPhaseSeconds) {
    ThreadPool pool(1);
    const Coo coo = gen::make_spd(gen::poisson2d(12, 12));
    const Sss sss(coo);
    auto kernel = make_kernel(KernelKind::kSssSerial, coo, pool);
    SsorPreconditioner ssor(sss);
    const auto b = random_vector(coo.rows(), 5);
    Options opts;
    opts.max_iterations = 500;
    const PcgResult res = pcg_solve(*kernel, ssor, pool, b, opts);
    EXPECT_GT(res.precond_seconds, 0.0);
    EXPECT_GT(res.total_seconds(), res.precond_seconds);
}

TEST(Pcg, RejectsBadOmega) {
    const Sss sss(gen::make_spd(gen::poisson2d(4, 4)));
    EXPECT_ANY_THROW(SsorPreconditioner(sss, 0.0));
    EXPECT_ANY_THROW(SsorPreconditioner(sss, 2.0));
}

}  // namespace
}  // namespace symspmv::cg
