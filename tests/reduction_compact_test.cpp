// Tests for the compact / grouped reduction-index layouts (§III.C ablation).
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <vector>

#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "spmv/reduction_compact.hpp"
#include "spmv/sss_kernels.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

TEST(CompactReductionIndex, ShrinksBytesWithVidWidth) {
    const Sss sss(gen::make_spd(gen::banded_random(400, 40, 7.0, 3, 0.3)));
    const auto parts = split_by_nnz(sss.rowptr(), 6);
    const ReductionIndex full(sss, parts);
    ASSERT_GT(full.entries().size(), 0u);
    const CompactReductionIndex v4(full, VidWidth::k4);
    const CompactReductionIndex v2(full, VidWidth::k2);
    const CompactReductionIndex v1(full, VidWidth::k1);
    EXPECT_EQ(v4.bytes(), full.entries().size() * 8);
    EXPECT_EQ(v2.bytes(), full.entries().size() * 6);
    EXPECT_EQ(v1.bytes(), full.entries().size() * 5);
    // The paper's pair layout costs exactly the v4 variant.
    EXPECT_EQ(full.bytes(), v4.bytes());
}

TEST(GroupedReductionIndex, NeverExceedsPairBytes) {
    const Sss sss(gen::make_spd(gen::banded_random(500, 60, 8.0, 5, 0.4)));
    const auto parts = split_by_nnz(sss.rowptr(), 8);
    const ReductionIndex full(sss, parts);
    const GroupedReductionIndex grouped(full);
    EXPECT_EQ(grouped.entries(), full.entries().size());
    EXPECT_LE(grouped.rows(), full.entries().size());
    // 4 (row) + 4 (ptr) amortized over >=1 vids plus 2 per vid beats 8 per
    // pair once rows share conflicts; never worse than 10 bytes per entry.
    EXPECT_LE(grouped.bytes(), full.entries().size() * 10 + 8);
}

class CompactLayouts : public ::testing::TestWithParam<IndexLayout> {};

TEST_P(CompactLayouts, KernelMatchesOracleAcrossThreads) {
    const Coo coo = gen::make_spd(gen::banded_random(450, 35, 7.0, 7, 0.25));
    const auto x = random_vector(coo.rows(), 1);
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    coo.spmv(x, y_ref);
    for (int threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        SssCompactIdxKernel kernel(Sss(coo), pool, GetParam());
        std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
        kernel.spmv(x, y);
        expect_near_vectors(y_ref, y);
        // Repeated call: locals must have been re-zeroed via the index.
        kernel.spmv(x, y);
        expect_near_vectors(y_ref, y);
    }
}

INSTANTIATE_TEST_SUITE_P(Layouts, CompactLayouts,
                         ::testing::Values(IndexLayout::kPairs4, IndexLayout::kPairs2,
                                           IndexLayout::kPairs1, IndexLayout::kGrouped),
                         [](const auto& info) {
                             switch (info.param) {
                                 case IndexLayout::kPairs4:
                                     return "Pairs4";
                                 case IndexLayout::kPairs2:
                                     return "Pairs2";
                                 case IndexLayout::kPairs1:
                                     return "Pairs1";
                                 case IndexLayout::kGrouped:
                                     return "Grouped";
                             }
                             return "Unknown";
                         });

TEST(CompactLayouts, MatchesReferenceSssIdxKernel) {
    ThreadPool pool(4);
    const Coo coo = gen::make_spd(gen::power_law_circuit(300, 4.0, 11));
    const auto x = random_vector(coo.rows(), 2);
    SssMtKernel reference(Sss(coo), pool, ReductionMethod::kIndexing);
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    reference.spmv(x, y_ref);
    for (IndexLayout layout : {IndexLayout::kPairs2, IndexLayout::kGrouped}) {
        SssCompactIdxKernel kernel(Sss(coo), pool, layout);
        std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
        kernel.spmv(x, y);
        for (std::size_t i = 0; i < y.size(); ++i) {
            EXPECT_NEAR(y_ref[i], y[i], 1e-12) << to_string(layout) << " at " << i;
        }
    }
}

TEST(CompactLayouts, IndexBytesOrderedByWidth) {
    ThreadPool pool(6);
    const Coo coo = gen::make_spd(gen::banded_random(600, 50, 6.0, 13, 0.35));
    SssCompactIdxKernel v4(Sss(coo), pool, IndexLayout::kPairs4);
    SssCompactIdxKernel v2(Sss(coo), pool, IndexLayout::kPairs2);
    SssCompactIdxKernel v1(Sss(coo), pool, IndexLayout::kPairs1);
    SssCompactIdxKernel grouped(Sss(coo), pool, IndexLayout::kGrouped);
    EXPECT_GT(v4.index_bytes(), v2.index_bytes());
    EXPECT_GT(v2.index_bytes(), v1.index_bytes());
    EXPECT_LT(grouped.index_bytes(), v4.index_bytes());
}

TEST(CompactReductionIndex, RejectsTooNarrowVid) {
    // A fabricated index with vid = 300 cannot fit one byte.
    const Sss sss(gen::make_spd(gen::poisson2d(40, 40)));
    // 300+ threads on a 1600-row matrix: vids exceed 255.
    const auto parts = split_by_nnz(sss.rowptr(), 400);
    const ReductionIndex full(sss, parts);
    bool has_large_vid = false;
    for (const auto& e : full.entries()) has_large_vid |= e.vid > 255;
    if (has_large_vid) {
        EXPECT_ANY_THROW(CompactReductionIndex(full, VidWidth::k1));
    } else {
        GTEST_SKIP() << "partitioning produced no vid above 255";
    }
}

}  // namespace
}  // namespace symspmv
