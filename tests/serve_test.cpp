// The serving subsystem end to end: protocol codecs, the socket-free
// Service, and the full loopback daemon (Server + Client over TCP).
//
// The load-bearing assertions mirror the serving contract:
//   - warm-path reuse: one matrix opened by two clients issuing many
//     requests builds its bundle once, tunes once, and spawns no new worker
//     pools after warm-up;
//   - admission control: a saturated queue sheds with kBusy instead of
//     stalling;
//   - graceful drain: requests admitted before shutdown still get replies,
//     requests after it get kShuttingDown;
//   - hostile bytes on a live socket (garbage, truncation, oversized length
//     prefixes) are clean protocol errors, never crashes or hangs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/framing.hpp"
#include "core/thread_pool.hpp"
#include "matrix/binio.hpp"
#include "matrix/generators.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "serve/client.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace symspmv::serve {
namespace {

Coo test_matrix() { return gen::make_spd(gen::poisson2d(16, 16)); }

std::string smx_bytes(const Coo& coo) {
    std::ostringstream os(std::ios::binary);
    write_binary(os, coo);
    return os.str();
}

std::vector<double> varied_vector(std::size_t n) {
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = 0.5 + 0.125 * static_cast<double>(i % 11);
    return v;
}

/// Spins until @p done returns true or ~5 s pass.
template <typename F>
bool wait_for(F&& done) {
    for (int i = 0; i < 500; ++i) {
        if (done()) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

std::filesystem::path scratch_dir(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / ("symspmv_serve_" + name);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// ---------------------------------------------------------------- framing --

TEST(Framing, RoundTripsThroughAStream) {
    Frame in;
    in.type = 42;
    in.payload = std::string("\x00\x01payload\xff", 10);
    std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
    write_frame(buf, in);
    write_frame(buf, in);
    const auto first = read_frame(buf);
    const auto second = read_frame(buf);
    const auto eof = read_frame(buf);
    ASSERT_TRUE(first && second);
    EXPECT_EQ(*first, in);
    EXPECT_EQ(*second, in);
    EXPECT_FALSE(eof.has_value());  // clean end-of-stream between frames
}

TEST(Framing, PayloadAboveCeilingIsRejectedBeforeAllocation) {
    Frame big;
    big.type = 1;
    big.payload.assign(2048, 'x');
    const std::string bytes = encode_frame(big);
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW((void)read_frame(in, /*max_payload=*/1024), ParseError);
}

TEST(Protocol, CodecsRoundTrip) {
    OpenRequest open;
    open.flags = kOpenNoTune;
    open.data = "matrix-bytes";
    const OpenRequest open2 = decode_open(encode(open));
    EXPECT_EQ(open2.flags, open.flags);
    EXPECT_EQ(open2.data, open.data);

    SpmvRequest spmv;
    spmv.session = 7;
    spmv.x = {1.0, -2.5, 3.25};
    const SpmvRequest spmv2 = decode_spmv_request(encode(spmv));
    EXPECT_EQ(spmv2.session, 7u);
    EXPECT_EQ(spmv2.x, spmv.x);

    SolveResult solved;
    solved.x = {0.5, 0.25};
    solved.iterations = 12;
    solved.residual_norm = 1e-9;
    solved.converged = 1;
    const SolveResult solved2 = decode_solve_result(encode(solved));
    EXPECT_EQ(solved2.x, solved.x);
    EXPECT_EQ(solved2.iterations, 12u);
    EXPECT_EQ(solved2.converged, 1);
}

TEST(Protocol, MalformedPayloadsAreParseErrors) {
    EXPECT_THROW((void)decode_spmv_request("short"), ParseError);
    EXPECT_THROW((void)decode_open(std::string(3, '\0')), ParseError);
    // A vector count that exceeds the remaining bytes.
    PayloadWriter w;
    w.put<std::uint64_t>(1);
    w.put<std::uint32_t>(1000);  // claims 1000 doubles, provides none
    EXPECT_THROW((void)decode_spmv_request(w.take()), ParseError);
    // Trailing bytes after a well-formed message.
    SpmvRequest req;
    req.session = 1;
    EXPECT_THROW((void)decode_spmv_request(encode(req) + "x"), ParseError);
}

// ------------------------------------------------------------ BoundedQueue --

TEST(BoundedQueueTest, ShedsWhenFullAndDrainsAfterClose) {
    BoundedQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3));  // full: shed
    q.close();
    EXPECT_FALSE(q.try_push(4));  // closed: shed
    EXPECT_EQ(q.pop(), 1);        // admitted items still drain
    EXPECT_EQ(q.pop(), 2);
    EXPECT_FALSE(q.pop().has_value());  // closed and empty: worker exit
}

TEST(BoundedQueueTest, ZeroCapacityAdmitsNothing) {
    BoundedQueue<int> q(0);
    EXPECT_FALSE(q.try_push(1));
}

// ---------------------------------------------------------------- Service --

TEST(ServiceTest, OpenSpmvSolveCloseLifecycle) {
    ServiceOptions opts;
    opts.threads = 2;
    Service service(opts);
    const Coo matrix = test_matrix();
    const auto n = static_cast<std::size_t>(matrix.rows());

    OpenRequest open;
    open.data = smx_bytes(matrix);
    Frame reply = service.handle(
        make_frame(MsgType::kOpenSmx, encode(open)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kSessionInfo))
        << decode_error(reply.payload).message;
    const SessionInfo info = decode_session_info(reply.payload);
    EXPECT_EQ(info.rows, n);
    EXPECT_FALSE(info.kernel.empty());

    SpmvRequest spmv;
    spmv.session = info.session;
    spmv.x = varied_vector(n);
    reply = service.handle(make_frame(MsgType::kSpmv, encode(spmv)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kSpmvResult));
    const SpmvResult y = decode_spmv_result(reply.payload);
    ASSERT_EQ(y.y.size(), n);

    // Oracle: the local COO product.
    std::vector<double> ref(n, 0.0);
    for (const Triplet& t : matrix.entries()) {
        ref[static_cast<std::size_t>(t.row)] +=
            t.val * spmv.x[static_cast<std::size_t>(t.col)];
    }
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y.y[i], ref[i], 1e-10);

    SolveRequest solve;
    solve.session = info.session;
    solve.b = varied_vector(n);
    solve.tolerance = 1e-9;
    solve.max_iterations = 2000;
    reply = service.handle(make_frame(MsgType::kSolve, encode(solve)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kSolveResult));
    const SolveResult solved = decode_solve_result(reply.payload);
    EXPECT_TRUE(solved.converged);
    EXPECT_GT(solved.iterations, 1u);

    reply = service.handle(
        make_frame(MsgType::kCloseSession, encode_session_id(info.session)));
    EXPECT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kSessionClosed));
    // Closed session: requests on it are kNotFound.
    reply = service.handle(make_frame(MsgType::kSpmv, encode(spmv)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kError));
    EXPECT_EQ(decode_error(reply.payload).code, ErrorCode::kNotFound);
}

TEST(ServiceTest, RequestValidationErrorsAreBadRequests) {
    Service service(ServiceOptions{});
    OpenRequest open;
    open.data = smx_bytes(test_matrix());
    const SessionInfo info = decode_session_info(
        service.handle(make_frame(MsgType::kOpenSmx, encode(open)))
            .payload);

    SpmvRequest wrong;
    wrong.session = info.session;
    wrong.x = {1.0, 2.0};  // wrong length
    Frame reply = service.handle(make_frame(MsgType::kSpmv, encode(wrong)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kError));
    EXPECT_EQ(decode_error(reply.payload).code, ErrorCode::kBadRequest);

    // Garbage payload bytes: a bad request, never an exception escaping.
    reply = service.handle(make_frame(MsgType::kSpmv, "nonsense"));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kError));
    EXPECT_EQ(decode_error(reply.payload).code, ErrorCode::kBadRequest);

    // Garbage matrix bytes.
    OpenRequest bad;
    bad.data = "not an smx stream";
    reply = service.handle(
        make_frame(MsgType::kOpenSmx, encode(bad)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kError));
    EXPECT_EQ(decode_error(reply.payload).code, ErrorCode::kBadRequest);

    // Unknown fingerprint with no matrix cache configured.
    OpenRequest fp;
    fp.data = "0x0x0-deadbeef-deadbeef";
    reply = service.handle(
        make_frame(MsgType::kOpenFingerprint, encode(fp)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kError));
    EXPECT_EQ(decode_error(reply.payload).code, ErrorCode::kNotFound);
}

TEST(ServiceTest, BackgroundTuneOnMissHotSwapsThePlan) {
    const auto dir = scratch_dir("tune");
    ServiceOptions opts;
    opts.threads = 2;
    opts.tune = true;
    opts.tune_budget = 4;
    opts.plan_cache_dir = (dir / "plans").string();
    Service service(opts);

    OpenRequest open;
    open.data = smx_bytes(test_matrix());
    const Frame reply = service.handle(
        make_frame(MsgType::kOpenSmx, encode(open)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kSessionInfo));
    const SessionInfo info = decode_session_info(reply.payload);
    EXPECT_EQ(info.plan_from_cache, 0);  // cold store: default plan served first

    ASSERT_TRUE(wait_for([&] { return service.tunes_completed() >= 1; }))
        << "background tune never completed";
    // The tuned winner is persisted for the next process.
    EXPECT_GE(service.plan_store().counters().saves, 1);
}

TEST(ServiceTest, RestartServesTheTunedPlanAndCachedMatrixFromDisk) {
    const auto dir = scratch_dir("restart");
    ServiceOptions opts;
    opts.threads = 2;
    opts.tune = true;
    opts.tune_budget = 4;
    opts.plan_cache_dir = (dir / "plans").string();
    opts.matrix_cache_dir = (dir / "matrices").string();

    std::string token;
    {
        Service first(opts);
        OpenRequest open;
        open.data = smx_bytes(test_matrix());
        const SessionInfo info = decode_session_info(
            first
                .handle(make_frame(MsgType::kOpenSmx, encode(open)))
                .payload);
        token = info.fingerprint;
        ASSERT_TRUE(wait_for([&] { return first.tunes_completed() >= 1; }));
    }

    // A fresh process: open by fingerprint alone.  The matrix comes from the
    // .smx cache, the plan from the plan store — no upload, no re-tune.
    Service second(opts);
    OpenRequest fp;
    fp.data = token;
    const Frame reply = second.handle(
        make_frame(MsgType::kOpenFingerprint, encode(fp)));
    ASSERT_EQ(reply.type, static_cast<std::uint16_t>(MsgType::kSessionInfo))
        << decode_error(reply.payload).message;
    const SessionInfo info = decode_session_info(reply.payload);
    EXPECT_EQ(info.fingerprint, token);
    EXPECT_EQ(info.plan_from_cache, 1);
    EXPECT_EQ(info.tuning_pending, 0);
    EXPECT_GE(second.plan_store().counters().disk_hits, 1);
    EXPECT_EQ(second.tunes_completed(), 0u);
}

// ------------------------------------------------- loopback client/server --

TEST(ServeLoopback, WarmPathAcrossTwoClientsBuildsAndTunesOnce) {
    const auto dir = scratch_dir("warm");
    ServerOptions sopts;
    sopts.port = 0;
    sopts.workers = 2;
    sopts.service.threads = 2;
    sopts.service.tune = true;
    sopts.service.tune_budget = 4;
    sopts.service.plan_cache_dir = (dir / "plans").string();
    Server server(sopts);

    const Coo matrix = test_matrix();
    const auto n = static_cast<std::size_t>(matrix.rows());
    const std::vector<double> x = varied_vector(n);

    Client c1 = Client::connect_to_tcp("127.0.0.1", server.port());
    Client c2 = Client::connect_to_tcp("127.0.0.1", server.port());

    const SessionInfo s1 = c1.open_smx(smx_bytes(matrix));
    const SessionInfo s2 = c2.open_smx(smx_bytes(matrix));
    EXPECT_EQ(s1.fingerprint, s2.fingerprint);
    EXPECT_NE(s1.session, s2.session);

    // Warm-up: let the background tune land and hot-swap the kernel.
    ASSERT_TRUE(wait_for([&] { return server.service().tunes_completed() >= 1; }));

    // One spmv each to fault in any post-tune resources, then snapshot.
    (void)c1.spmv(s1.session, x);
    (void)c2.spmv(s2.session, x);
    const std::uint64_t pools_before = ThreadPool::pools_created();
    const autotune::PlanStore::Counters store_before =
        server.service().plan_store().counters();

    std::vector<double> y1, y2;
    for (int i = 0; i < 10; ++i) {
        y1 = c1.spmv(s1.session, x);
        y2 = c2.spmv(s2.session, x);
        ASSERT_EQ(y1.size(), y2.size());
        for (std::size_t k = 0; k < y1.size(); ++k) {
            EXPECT_NEAR(y1[k], y2[k], 1e-12);  // same shared state, same answers
        }
    }
    const SolveResult solved = c1.solve(s1.session, x, 1e-9, 2000);
    EXPECT_TRUE(solved.converged);

    // The warm-path contract: 20 requests later, nothing was rebuilt.
    EXPECT_EQ(ThreadPool::pools_created(), pools_before)
        << "request handling spawned new worker pools after warm-up";
    const autotune::PlanStore::Counters store_after =
        server.service().plan_store().counters();
    EXPECT_EQ(store_after.misses, store_before.misses)
        << "a request re-resolved a plan after warm-up";
    EXPECT_EQ(store_after.saves, store_before.saves);

    const SessionManager::Stats sessions = server.service().sessions().stats();
    EXPECT_EQ(sessions.states_built, 1u) << "the shared matrix was built more than once";
    EXPECT_GE(sessions.states_reused, 1u);
    EXPECT_EQ(server.service().tunes_completed(), 1u);

    server.begin_shutdown();
    server.wait();
}

TEST(ServeLoopback, QueueOverflowShedsWithBusy) {
    ServerOptions sopts;
    sopts.port = 0;
    sopts.queue_capacity = 0;  // admit nothing: every compute request sheds
    Server server(sopts);

    Client client = Client::connect_to_tcp("127.0.0.1", server.port());
    client.ping();  // control plane bypasses the queue and still answers

    OpenRequest open;
    open.data = smx_bytes(test_matrix());
    try {
        (void)client.open_smx(smx_bytes(test_matrix()));
        FAIL() << "expected kBusy";
    } catch (const RemoteError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kBusy);
    }
    EXPECT_TRUE(wait_for([&] { return server.stats().requests_shed >= 1; }));
    // The shed counter and the busy outcome are visible in the exposition.
    const std::string metrics = client.metrics();
    EXPECT_NE(metrics.find("symspmv_serve_shed_total 1"), std::string::npos);
    EXPECT_NE(
        metrics.find("symspmv_serve_requests_total{outcome=\"busy\"} 1"),
        std::string::npos)
        << metrics;

    server.begin_shutdown();
    server.wait();
}

TEST(ServeLoopback, GracefulDrainFinishesAdmittedWork) {
    ServerOptions sopts;
    sopts.port = 0;
    sopts.workers = 1;
    sopts.service.test_request_delay_ms = 300;  // hold the worker busy
    Server server(sopts);

    Client c1 = Client::connect_to_tcp("127.0.0.1", server.port());
    Client c2 = Client::connect_to_tcp("127.0.0.1", server.port());
    const Coo matrix = test_matrix();
    const auto n = static_cast<std::size_t>(matrix.rows());
    const SessionInfo info = c1.open_smx(smx_bytes(matrix));

    // Admit a slow request, then initiate the drain while it runs.
    std::atomic<bool> got_reply{false};
    std::thread in_flight([&] {
        const std::vector<double> y = c1.spmv(info.session, varied_vector(n));
        got_reply.store(y.size() == n);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.begin_shutdown();

    // Requests after the drain began are refused, not queued.
    try {
        (void)c2.spmv(info.session, varied_vector(n));
        FAIL() << "expected kShuttingDown";
    } catch (const RemoteError& e) {
        EXPECT_EQ(e.code(), ErrorCode::kShuttingDown);
    }

    server.wait();
    in_flight.join();
    EXPECT_TRUE(got_reply.load()) << "the admitted request lost its reply in the drain";
}

TEST(ServeLoopback, MetricsOverHttpAndBinaryOnOneListener) {
    ServerOptions sopts;
    sopts.port = 0;
    Server server(sopts);

    Client client = Client::connect_to_tcp("127.0.0.1", server.port());
    (void)client.open_smx(smx_bytes(test_matrix()));
    const std::string binary = client.metrics();
    EXPECT_NE(binary.find("symspmv_serve_requests_total"), std::string::npos);
    EXPECT_NE(binary.find("symspmv_serve_request_seconds_bucket"), std::string::npos);
    EXPECT_NE(binary.find("symspmv_serve_shed_total"), std::string::npos);
    EXPECT_NE(binary.find("symspmv_plan_cache_hits_total"), std::string::npos);

    // Plain HTTP scrape on the same port.
    SocketStream http(connect_tcp("127.0.0.1", server.port()));
    http << "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";
    http.flush();
    std::ostringstream response;
    response << http.rdbuf();
    const std::string text = response.str();
    EXPECT_NE(text.find("200 OK"), std::string::npos);
    EXPECT_NE(text.find("version=0.0.4"), std::string::npos);
    EXPECT_NE(text.find("symspmv_serve_requests_total"), std::string::npos);

    SocketStream wrong_path(connect_tcp("127.0.0.1", server.port()));
    wrong_path << "GET /nope HTTP/1.1\r\n\r\n";
    wrong_path.flush();
    std::ostringstream nf;
    nf << wrong_path.rdbuf();
    EXPECT_NE(nf.str().find("404"), std::string::npos);

    server.begin_shutdown();
    server.wait();
}

TEST(ServeLoopback, HostileBytesOnALiveSocketAreCleanErrors) {
    ServerOptions sopts;
    sopts.port = 0;
    Server server(sopts);

    // Garbage that is not a frame and not HTTP.
    {
        SocketStream raw(connect_tcp("127.0.0.1", server.port()));
        raw << "XXXXtotal nonsense bytes";
        raw.flush();
        const auto reply = read_frame(raw);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(reply->type, static_cast<std::uint16_t>(MsgType::kError));
        EXPECT_EQ(decode_error(reply->payload).code, ErrorCode::kBadRequest);
    }

    // An oversized length prefix: claims ~4 GiB, sends nothing.
    {
        SocketStream raw(connect_tcp("127.0.0.1", server.port()));
        std::string header(kFrameMagic, sizeof(kFrameMagic));
        const auto put16 = [&](std::uint16_t v) {
            header.push_back(static_cast<char>(v & 0xff));
            header.push_back(static_cast<char>(v >> 8));
        };
        put16(kFrameVersion);
        put16(static_cast<std::uint16_t>(MsgType::kSpmv));
        for (int i = 0; i < 8; ++i) header.push_back('\x22');  // v2 trace id
        for (int i = 0; i < 4; ++i) header.push_back(static_cast<char>(0xf0));
        raw << header;
        raw.flush();
        const auto reply = read_frame(raw);
        ASSERT_TRUE(reply.has_value());
        EXPECT_EQ(decode_error(reply->payload).code, ErrorCode::kBadRequest);
    }

    // A truncated frame followed by an abrupt close: the connection dies,
    // the daemon must not.
    {
        SocketStream raw(connect_tcp("127.0.0.1", server.port()));
        const std::string full = encode_frame(make_frame(MsgType::kPing));
        raw << full.substr(0, full.size() / 2);
        raw.flush();
    }

    // The daemon is still fully alive for well-behaved clients.
    Client client = Client::connect_to_tcp("127.0.0.1", server.port());
    client.ping();
    (void)client.open_smx(smx_bytes(test_matrix()));

    server.begin_shutdown();
    server.wait();
}

TEST(ServeLoopback, ClientShutdownFrameDrainsTheServer) {
    ServerOptions sopts;
    sopts.port = 0;
    Server server(sopts);
    Client client = Client::connect_to_tcp("127.0.0.1", server.port());
    client.shutdown_server();
    EXPECT_TRUE(server.draining());
    server.wait();
}

// The acceptance scenario of the tracing subsystem: a client-stamped trace
// id travels the wire, the request's span tree is recorded from the frame
// read through the kernel phases, the slow capture fires exactly once, and
// the dump comes back as one well-formed Chrome trace.
TEST(ServeLoopback, TraceChainSlowCaptureAndDump) {
    const auto dir = scratch_dir("trace");
    const std::string slow_path = (dir / "slow.jsonl").string();
    obs::FlightRecorder flight(4096);  // private recorder: no cross-test spans

    ServerOptions sopts;
    sopts.port = 0;
    sopts.workers = 1;
    sopts.service.threads = 2;
    sopts.service.test_request_delay_ms = 300;  // compute requests only
    sopts.service.slow_ms = 150.0;              // 300 ms spmv must trip it
    sopts.service.slow_log_path = slow_path;
    sopts.service.flight = &flight;
    Server server(sopts);

    const Coo matrix = test_matrix();
    const auto n = static_cast<std::size_t>(matrix.rows());
    Client client = Client::connect_to_tcp("127.0.0.1", server.port());

    // The open is not delayed and must not be captured as slow.
    const SessionInfo info = client.open_smx(smx_bytes(matrix));

    // One spmv with a known client-stamped trace id.
    const std::uint64_t trace_id = 0x1122334455667788ULL;
    client.set_next_trace_id(trace_id);
    const std::vector<double> y = client.spmv(info.session, varied_vector(n));
    EXPECT_EQ(y.size(), n);
    EXPECT_EQ(client.last_trace_id(), trace_id);

    // The root span is recorded just after the reply is written; give the
    // worker its few microseconds before snapshotting.
    ASSERT_TRUE(wait_for([&] {
        const auto spans = flight.trace(trace_id);
        return std::any_of(spans.begin(), spans.end(),
                           [](const obs::Span& s) { return s.name == "request"; });
    }));

    // Exactly one slow capture, and it is the spmv.
    EXPECT_EQ(server.service().slow_captured(), 1u);
    std::ifstream slow(slow_path);
    std::string line;
    ASSERT_TRUE(std::getline(slow, line)) << "slow log is empty";
    const obs::Json record = obs::Json::parse(line);
    EXPECT_EQ(record.at("trace_id").as_string(), obs::format_trace_id(trace_id));
    EXPECT_EQ(record.at("trigger").as_string(), "absolute");
    EXPECT_GE(record.at("seconds").as_double(), 0.15);
    std::vector<std::string> slow_names;
    for (const auto& s : record.at("spans").as_array()) {
        slow_names.push_back(s.at("name").as_string());
    }
    for (const char* expected : {"read-frame", "queue-wait", "handle:spmv",
                                 "session-lookup", "spmv-execute", "multiply"}) {
        EXPECT_NE(std::find(slow_names.begin(), slow_names.end(), expected),
                  slow_names.end())
            << "slow capture is missing the " << expected << " span";
    }
    EXPECT_FALSE(std::getline(slow, line)) << "more than one slow capture: " << line;

    // The trace dump is one well-formed Chrome document holding the chain.
    const obs::Json dump = obs::Json::parse(client.dump_trace());
    std::vector<std::string> dump_names;
    for (const auto& ev : dump.at("traceEvents").as_array()) {
        if (ev.at("ph").as_string() != "X") continue;
        const obs::Json* args = ev.get("args");
        if (args == nullptr || args->get("trace_id") == nullptr) continue;
        if (args->at("trace_id").as_string() != obs::format_trace_id(trace_id)) continue;
        dump_names.push_back(ev.at("name").as_string());
    }
    for (const char* expected :
         {"read-frame", "request", "queue-wait", "handle:spmv", "spmv-execute",
          "multiply"}) {
        EXPECT_NE(std::find(dump_names.begin(), dump_names.end(), expected),
                  dump_names.end())
            << "trace dump is missing the " << expected << " span";
    }

    // The new instrumentation is all visible in one scrape.
    const std::string metrics = client.metrics();
    EXPECT_NE(metrics.find("symspmv_serve_slow_captured_total 1"), std::string::npos);
    EXPECT_NE(metrics.find("symspmv_serve_request_seconds_count{phase=\"queue\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("symspmv_serve_request_seconds_count{phase=\"total\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("symspmv_serve_requests_total{outcome=\"ok\"}"),
              std::string::npos);
    EXPECT_NE(metrics.find("symspmv_serve_build_info{"), std::string::npos);

    server.begin_shutdown();
    server.wait();
}

// A v1 (pre-trace-id) client on the wire: the daemon decodes the legacy
// frame, assigns a trace id server-side, and answers with a frame the old
// decoder's contract still covers.
TEST(ServeLoopback, LegacyV1FramesInteroperate) {
    ServerOptions sopts;
    sopts.port = 0;
    Server server(sopts);

    SocketStream raw(connect_tcp("127.0.0.1", server.port()));
    Frame ping;
    ping.type = static_cast<std::uint16_t>(MsgType::kPing);
    write_frame_legacy(raw, ping);
    raw.flush();
    const auto reply = read_frame(raw);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, static_cast<std::uint16_t>(MsgType::kPong));
    // No id on the v1 wire, so the server assigned one and stamped the reply.
    EXPECT_NE(reply->trace_id, 0u);

    server.begin_shutdown();
    server.wait();
}

TEST(ServeLoopback, UnixDomainListenerServesTheSameProtocol) {
    const auto dir = scratch_dir("unix");
    ServerOptions sopts;
    sopts.port = -1;
    sopts.unix_path = (dir / "serve.sock").string();
    Server server(sopts);

    Client client = Client::connect_to_unix(sopts.unix_path);
    client.ping();
    const SessionInfo info = client.open_smx(smx_bytes(test_matrix()));
    EXPECT_GT(info.nnz, 0u);

    server.begin_shutdown();
    server.wait();
    EXPECT_FALSE(std::filesystem::exists(sopts.unix_path))
        << "the socket file must be unlinked on clean shutdown";
}

}  // namespace
}  // namespace symspmv::serve
