// Tests for permutations and Reverse Cuthill-McKee reordering.
#include <gtest/gtest.h>

#include <random>

#include "core/error.hpp"
#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "matrix/suite.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"

namespace symspmv {
namespace {

TEST(Permute, IsPermutationDetectsBijections) {
    EXPECT_TRUE(is_permutation(std::vector<index_t>{2, 0, 1}));
    EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 0, 1}));
    EXPECT_FALSE(is_permutation(std::vector<index_t>{0, 3, 1}));
    EXPECT_FALSE(is_permutation(std::vector<index_t>{0, -1, 1}));
    EXPECT_TRUE(is_permutation(std::vector<index_t>{}));
}

TEST(Permute, InvertRoundTrip) {
    const std::vector<index_t> perm = {3, 1, 0, 2};
    const auto inv = invert_permutation(perm);
    EXPECT_EQ(inv, (std::vector<index_t>{2, 1, 3, 0}));
    EXPECT_EQ(invert_permutation(inv), perm);
}

TEST(Permute, SymmetricPermutationPreservesSymmetryAndValues) {
    const Coo a = gen::banded_random(64, 8, 6.0, 3);
    const std::vector<index_t> perm = rcm_permutation(a);
    const Coo b = permute_symmetric(a, perm);
    EXPECT_TRUE(b.is_symmetric());
    EXPECT_EQ(b.nnz(), a.nnz());
    // Spot-check: a(i,j) must equal b(perm[i], perm[j]).
    for (int k = 0; k < 20; ++k) {
        const Triplet& t = a.entries()[static_cast<std::size_t>(k * 7 % a.nnz())];
        bool found = false;
        for (const Triplet& u : b.entries()) {
            if (u.row == perm[static_cast<std::size_t>(t.row)] &&
                u.col == perm[static_cast<std::size_t>(t.col)]) {
                EXPECT_DOUBLE_EQ(u.val, t.val);
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST(Permute, PermutedSpmvIsConsistent) {
    // y = A x  implies  P y = (P A P^T) (P x).
    const Coo a = gen::banded_random(100, 20, 8.0, 5, 0.3);
    const auto perm = rcm_permutation(a);
    const Coo pa = permute_symmetric(a, perm);
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> x(100);
    for (auto& v : x) v = dist(rng);
    std::vector<value_t> y(100), py(100), y2(100);
    a.spmv(x, y);
    const auto px = permute_vector(x, perm);
    pa.spmv(px, py);
    const auto y_check = unpermute_vector(py, invert_permutation(perm));
    // unpermute with inverse = apply perm twice; easier: permute y forward.
    const auto py_expected = permute_vector(y, perm);
    for (int i = 0; i < 100; ++i) EXPECT_NEAR(py[i], py_expected[static_cast<std::size_t>(i)], 1e-11);
    (void)y_check;
    (void)y2;
}

TEST(Permute, VectorPermuteRoundTrip) {
    const std::vector<value_t> v = {10.0, 20.0, 30.0};
    const std::vector<index_t> perm = {2, 0, 1};
    const auto pv = permute_vector(v, perm);
    EXPECT_EQ(pv, (std::vector<value_t>{20.0, 30.0, 10.0}));
    EXPECT_EQ(unpermute_vector(pv, perm), v);
}

TEST(Permute, RejectsBadInput) {
    Coo rect(2, 3);
    rect.canonicalize();
    const std::vector<index_t> p2 = {0, 1};
    EXPECT_THROW(permute_symmetric(rect, p2), InternalError);
    Coo sq(2, 2);
    sq.canonicalize();
    const std::vector<index_t> bad = {0, 0};
    EXPECT_THROW(permute_symmetric(sq, bad), InternalError);
}

TEST(AdjacencyGraphTest, BuildsSymmetrizedPattern) {
    Coo m(3, 3);
    m.add(0, 0, 1.0);
    m.add(1, 0, 1.0);  // only one direction stored
    m.add(2, 1, 1.0);
    m.canonicalize();
    const AdjacencyGraph g(m);
    EXPECT_EQ(g.vertices(), 3);
    EXPECT_EQ(g.degree(0), 1);
    EXPECT_EQ(g.degree(1), 2);  // neighbors 0 and 2
    EXPECT_EQ(g.degree(2), 1);
}

TEST(BfsLevels, PathGraphHasLinearDepth) {
    Coo path(5, 5);
    for (index_t i = 1; i < 5; ++i) {
        path.add(i, i - 1, 1.0);
        path.add(i - 1, i, 1.0);
    }
    path.canonicalize();
    const AdjacencyGraph g(path);
    const LevelStructure ls = bfs_levels(g, 0);
    EXPECT_EQ(ls.depth(), 5);
    EXPECT_EQ(ls.width(), 1);
    const LevelStructure mid = bfs_levels(g, 2);
    EXPECT_EQ(mid.depth(), 3);
    EXPECT_EQ(mid.width(), 2);
}

TEST(PseudoPeripheral, FindsPathEndpoint) {
    Coo path(7, 7);
    for (index_t i = 1; i < 7; ++i) {
        path.add(i, i - 1, 1.0);
        path.add(i - 1, i, 1.0);
    }
    path.canonicalize();
    const AdjacencyGraph g(path);
    const index_t v = pseudo_peripheral_vertex(g, 3);
    EXPECT_TRUE(v == 0 || v == 6);
}

TEST(Rcm, ProducesAPermutation) {
    const Coo a = gen::power_law_circuit(256, 4.0, 11);
    const auto perm = rcm_permutation(a);
    EXPECT_TRUE(is_permutation(perm));
}

TEST(Rcm, ReducesBandwidthOfScatteredMatrix) {
    // 30% of the entries stay banded, so a good ordering exists even though
    // the scattered 70% limits how tight it can get.
    const Coo a = gen::banded_random(512, 16, 8.0, 9, /*scatter_fraction=*/0.7);
    const index_t before = bandwidth(a);
    const Coo b = permute_symmetric(a, rcm_permutation(a));
    const index_t after = bandwidth(b);
    EXPECT_LT(after, before * 3 / 4) << "RCM should clearly reduce the bandwidth here";
}

TEST(Rcm, ReducesBandwidthOfCircuitMatrix) {
    const Coo a = gen::power_law_circuit(2048, 4.8, 17);
    const index_t before = bandwidth(a);
    const Coo b = permute_symmetric(a, rcm_permutation(a));
    EXPECT_LT(bandwidth(b), before);
}

TEST(Rcm, HandlesDisconnectedGraphs) {
    // Two independent path components.
    Coo m(6, 6);
    for (index_t i : {1, 2}) {
        m.add(i, i - 1, 1.0);
        m.add(i - 1, i, 1.0);
    }
    for (index_t i : {4, 5}) {
        m.add(i, i - 1, 1.0);
        m.add(i - 1, i, 1.0);
    }
    m.canonicalize();
    const auto perm = rcm_permutation(m);
    EXPECT_TRUE(is_permutation(perm));
}

TEST(Rcm, HandlesIsolatedVerticesAndEmptyMatrix) {
    Coo m(4, 4);
    m.add(0, 0, 1.0);  // diagonal only: all vertices isolated
    m.canonicalize();
    EXPECT_TRUE(is_permutation(rcm_permutation(m)));

    Coo empty(0, 0);
    empty.canonicalize();
    EXPECT_TRUE(rcm_permutation(empty).empty());
}

class RcmOnSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(RcmOnSuite, NeverIncreasesBandwidthMuch) {
    const Coo a = gen::generate_suite_matrix(GetParam(), 0.005);
    const index_t before = bandwidth(a);
    const Coo b = permute_symmetric(a, rcm_permutation(a));
    // RCM is a heuristic; on already-banded matrices it may not help, but it
    // must never blow the bandwidth up.
    EXPECT_LE(bandwidth(b), static_cast<index_t>(before * 1.5) + 8) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(HighBandwidth, RcmOnSuite,
                         ::testing::Values("offshore", "G3_circuit", "parabolic_fem"));

}  // namespace
}  // namespace symspmv
