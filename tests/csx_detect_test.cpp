// Tests for CSX substructure detection.
#include <gtest/gtest.h>

#include <vector>

#include "csx/detect.hpp"
#include "matrix/generators.hpp"

namespace symspmv::csx {
namespace {

std::vector<Triplet> row_of(index_t r, std::vector<index_t> cols) {
    std::vector<Triplet> out;
    for (index_t c : cols) out.push_back({r, c, 1.0});
    return out;
}

CsxConfig tight() {
    CsxConfig cfg;
    cfg.min_coverage = 0.0;  // accept everything in unit tests
    return cfg;
}

TEST(Detect, FindsHorizontalRun) {
    const auto elems = row_of(3, {10, 11, 12, 13, 14});
    const Detector d(elems, tight());
    const auto stats = d.collect_stats();
    ASSERT_FALSE(stats.empty());
    EXPECT_EQ(stats[0].pattern, (Pattern{PatternType::kHorizontal, 1}));
    EXPECT_EQ(stats[0].covered, 5);
}

TEST(Detect, FindsStridedHorizontalRun) {
    const auto elems = row_of(0, {0, 3, 6, 9});
    const auto stats = Detector(elems, tight()).collect_stats();
    ASSERT_FALSE(stats.empty());
    EXPECT_EQ(stats[0].pattern, (Pattern{PatternType::kHorizontal, 3}));
}

TEST(Detect, FindsVerticalRun) {
    std::vector<Triplet> elems;
    for (index_t r = 2; r < 8; ++r) elems.push_back({r, 5, 1.0});
    const auto stats = Detector(elems, tight()).collect_stats();
    ASSERT_FALSE(stats.empty());
    EXPECT_EQ(stats[0].pattern, (Pattern{PatternType::kVertical, 1}));
    EXPECT_EQ(stats[0].covered, 6);
}

TEST(Detect, FindsDiagonalRun) {
    std::vector<Triplet> elems;
    for (index_t k = 0; k < 5; ++k) elems.push_back({10 + k, 4 + k, 1.0});
    const auto stats = Detector(elems, tight()).collect_stats();
    bool found = false;
    for (const auto& s : stats) {
        if (s.pattern == Pattern{PatternType::kDiagonal, 1}) {
            EXPECT_EQ(s.covered, 5);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Detect, FindsAntiDiagonalRun) {
    std::vector<Triplet> elems;
    for (index_t k = 0; k < 4; ++k) elems.push_back({10 + k, 9 - k, 1.0});
    const auto stats = Detector(elems, tight()).collect_stats();
    bool found = false;
    for (const auto& s : stats) {
        if (s.pattern == Pattern{PatternType::kAntiDiagonal, 1}) found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Detect, FindsDenseBlock) {
    // 2x4 dense block anchored at (0, 10).
    std::vector<Triplet> elems;
    for (index_t r = 0; r < 2; ++r) {
        for (index_t c = 10; c < 14; ++c) elems.push_back({r, c, 1.0});
    }
    CsxConfig cfg = tight();
    cfg.block_rows = {2};
    // Disable the directional types so the block is unambiguous.
    cfg.horizontal = cfg.vertical = cfg.diagonal = cfg.antidiagonal = false;
    const auto stats = Detector(elems, cfg).collect_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].pattern, (Pattern{PatternType::kBlock, 2}));
    EXPECT_EQ(stats[0].covered, 8);
}

TEST(Detect, BlockAlignmentFollowsPartitionStart) {
    // Same block, but the partition starts at row 1: strips are rows {1,2}.
    std::vector<Triplet> elems;
    for (index_t r = 1; r < 3; ++r) {
        for (index_t c = 0; c < 3; ++c) elems.push_back({r, c, 1.0});
    }
    CsxConfig cfg = tight();
    cfg.block_rows = {2};
    cfg.horizontal = cfg.vertical = cfg.diagonal = cfg.antidiagonal = false;
    const auto stats = Detector(elems, cfg).collect_stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].covered, 6);
}

TEST(Detect, ShortRunsAreIgnored) {
    const auto elems = row_of(0, {1, 2, 3});  // length 3 < default min 4
    const auto stats = Detector(elems, tight()).collect_stats();
    for (const auto& s : stats) {
        EXPECT_NE(s.pattern.type, PatternType::kHorizontal);
    }
}

TEST(Detect, MinPatternLengthIsConfigurable) {
    auto cfg = tight();
    cfg.min_pattern_length = 3;
    const auto elems = row_of(0, {1, 2, 3});
    const auto stats = Detector(elems, cfg).collect_stats();
    ASSERT_FALSE(stats.empty());
    EXPECT_EQ(stats[0].covered, 3);
}

TEST(Detect, MaxDeltaIsRespected) {
    auto cfg = tight();
    cfg.max_delta = 2;
    const auto elems = row_of(0, {0, 5, 10, 15});  // stride 5 > max_delta
    const auto stats = Detector(elems, cfg).collect_stats();
    EXPECT_TRUE(stats.empty());
}

TEST(Detect, BoundaryBreaksRuns) {
    // Columns 3,4,5,6 with a CSX-Sym boundary at 5: the run must not span
    // both sides (§IV.B, Fig. 8).
    const auto elems = row_of(9, {3, 4, 5, 6});
    const Detector d(elems, tight(), /*boundary=*/5);
    const auto stats = d.collect_stats();
    for (const auto& s : stats) {
        EXPECT_LT(s.covered, 4) << to_string(s.pattern);
    }
}

TEST(Detect, SelectPatternsHonorsCoverageThreshold) {
    // 100 elements: a 10-element horizontal run + 90 scattered.
    std::vector<Triplet> elems;
    for (index_t c = 0; c < 10; ++c) elems.push_back({0, c, 1.0});
    for (index_t r = 1; r < 91; ++r) elems.push_back({r, (r * 37) % 500, 1.0});
    CsxConfig cfg;
    cfg.min_coverage = 0.2;  // 10% run is below the 20% bar
    {
        Detector d(elems, cfg);
        EXPECT_TRUE(d.select_patterns().empty());
    }
    cfg.min_coverage = 0.05;
    {
        Detector d(elems, cfg);
        const auto sel = d.select_patterns();
        ASSERT_FALSE(sel.empty());
        EXPECT_EQ(sel[0].type, PatternType::kHorizontal);
    }
}

TEST(Detect, EncodeUnitsConsumesEachElementOnce) {
    const Coo m = gen::block_fem(32, 3, 6.0, 0.2, 41);
    const std::vector<Triplet> elems(m.entries().begin(), m.entries().end());
    CsxConfig cfg;
    cfg.min_coverage = 0.01;
    Detector d(elems, cfg);
    const auto selected = d.select_patterns();
    const auto res = d.encode_units(selected);
    std::vector<int> hit(elems.size(), 0);
    for (const auto& u : res.units) {
        EXPECT_EQ(static_cast<int>(u.elems.size()), u.size);
        for (auto e : u.elems) ++hit[e];
    }
    for (std::size_t i = 0; i < elems.size(); ++i) {
        EXPECT_EQ(hit[i], res.consumed[i] ? 1 : 0);
    }
}

TEST(Detect, UnitSizeNeverExceedsCap) {
    // A 1000-element dense row must be chopped into <=255-element units.
    std::vector<index_t> cols(1000);
    for (index_t i = 0; i < 1000; ++i) cols[static_cast<std::size_t>(i)] = i;
    const auto elems = row_of(0, cols);
    CsxConfig cfg = tight();
    Detector d(elems, cfg);
    const std::vector<Pattern> sel = {{PatternType::kHorizontal, 1}};
    const auto res = d.encode_units(sel);
    ASSERT_FALSE(res.units.empty());
    for (const auto& u : res.units) EXPECT_LE(u.size, kMaxUnitSize);
}

TEST(Detect, SamplingStillFindsDominantPattern) {
    const Coo m = gen::poisson2d(64, 64);
    const std::vector<Triplet> elems(m.entries().begin(), m.entries().end());
    CsxConfig cfg;
    cfg.sample_fraction = 0.25;
    cfg.min_coverage = 0.05;
    Detector d(elems, cfg);
    const auto sel = d.select_patterns();
    EXPECT_FALSE(sel.empty());  // the stencil's diagonals dominate
}

}  // namespace
}  // namespace symspmv::csx
