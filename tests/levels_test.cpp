// Tests for whole-graph BFS level sets and their recursive subdivision
// (src/reorder/levels.hpp) — the scheduling substrate of the SSS-race
// kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "matrix/generators.hpp"
#include "reorder/levels.hpp"
#include "reorder/permute.hpp"

namespace symspmv {
namespace {

/// level_of[r] recovered from the bucketed structure.
std::vector<index_t> level_of(const LevelSets& ls) {
    std::vector<index_t> out(ls.rows.size(), -1);
    for (index_t l = 0; l < ls.levels(); ++l) {
        for (const index_t r : ls.level(l)) out[static_cast<std::size_t>(r)] = l;
    }
    return out;
}

/// Block-diagonal disconnected test graph: a path of @p path rows, a
/// separate tridiagonal band of @p band rows, and @p isolated diagonal-only
/// rows.
Coo disconnected_coo(index_t path, index_t band, index_t isolated) {
    const index_t n = path + band + isolated;
    std::vector<Triplet> t;
    for (index_t i = 0; i < n; ++i) t.push_back({i, i, 4.0});
    for (index_t i = 1; i < path; ++i) {
        t.push_back({i, i - 1, -1.0});
        t.push_back({i - 1, i, -1.0});
    }
    for (index_t i = path + 1; i < path + band; ++i) {
        t.push_back({i, i - 1, -2.0});
        t.push_back({i - 1, i, -2.0});
    }
    return Coo(n, n, std::move(t));
}

TEST(LevelSets, EmptyMatrixHasZeroLevels) {
    const LevelSets ls = build_level_sets(Coo(0, 0));
    EXPECT_EQ(ls.levels(), 0);
    EXPECT_TRUE(ls.rows.empty());
    EXPECT_EQ(ls.width(), 0);
}

TEST(LevelSets, SingleRowIsOneSingletonLevel) {
    const LevelSets ls = build_level_sets(Coo(1, 1, {{0, 0, 2.5}}));
    ASSERT_EQ(ls.levels(), 1);
    ASSERT_EQ(ls.rows.size(), 1u);
    EXPECT_EQ(ls.rows[0], 0);
}

TEST(LevelSets, EveryRowAppearsExactlyOnce) {
    const Coo a = gen::make_spd(gen::banded_random(97, 9, 5.0, 3));
    const LevelSets ls = build_level_sets(a);
    std::vector<index_t> sorted = ls.rows;
    std::ranges::sort(sorted);
    ASSERT_EQ(sorted.size(), 97u);
    for (index_t r = 0; r < 97; ++r) EXPECT_EQ(sorted[static_cast<std::size_t>(r)], r);
}

TEST(LevelSets, EdgesNeverSpanMoreThanOneLevel) {
    // The conflict-distance argument of the RACE schedule rests entirely on
    // this property.
    const Coo a = gen::make_spd(gen::banded_random(120, 14, 5.0, 11));
    const LevelSets ls = build_level_sets(a);
    const std::vector<index_t> lvl = level_of(ls);
    for (const Triplet& t : a.entries()) {
        if (t.row == t.col) continue;
        const index_t d = lvl[static_cast<std::size_t>(t.row)] -
                          lvl[static_cast<std::size_t>(t.col)];
        EXPECT_LE(d <= 0 ? -d : d, 1) << "edge (" << t.row << ", " << t.col << ")";
    }
}

TEST(LevelSets, DisconnectedComponentsMergeByLevelIndex) {
    const Coo a = disconnected_coo(17, 6, 3);
    const LevelSets ls = build_level_sets(a);
    // Deepest component is the 17-row path: 17 levels from a peripheral end.
    EXPECT_EQ(ls.levels(), 17);
    // Every row is placed exactly once despite the BFS restarts.
    std::vector<index_t> sorted = ls.rows;
    std::ranges::sort(sorted);
    ASSERT_EQ(sorted.size(), 26u);
    for (index_t r = 0; r < 26; ++r) EXPECT_EQ(sorted[static_cast<std::size_t>(r)], r);
    // Isolated vertices have no neighbors, so they all land in level 0.
    const std::vector<index_t> lvl = level_of(ls);
    for (index_t r = 23; r < 26; ++r) EXPECT_EQ(lvl[static_cast<std::size_t>(r)], 0);
}

TEST(LevelSets, PermutationRoundTrips) {
    const Coo a = disconnected_coo(11, 5, 2);
    const LevelSets ls = build_level_sets(a);
    const std::vector<index_t> perm = level_permutation(ls);
    EXPECT_TRUE(is_permutation(perm));
    EXPECT_EQ(invert_permutation(invert_permutation(perm)), perm);
    // Row at position pos of the level order maps to new index pos.
    for (std::size_t pos = 0; pos < ls.rows.size(); ++pos) {
        EXPECT_EQ(perm[static_cast<std::size_t>(ls.rows[pos])], static_cast<index_t>(pos));
    }
    // The symmetric permutation keeps the matrix symmetric and, because
    // levels become contiguous row ranges, every permuted edge still spans
    // at most one level.
    const Coo b = permute_symmetric(a, perm);
    EXPECT_TRUE(b.is_symmetric());
    EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(LevelBlocks, SubdivisionPartitionsRowsWithoutMixingLevels) {
    const Coo a = gen::make_spd(gen::banded_random(90, 12, 5.0, 5));
    const LevelSets ls = build_level_sets(a);
    const std::vector<index_t> lvl = level_of(ls);
    const std::vector<std::int64_t> weight(ls.rows.size(), 1);
    const LevelBlocks lb = subdivide_levels(ls, weight, 3);
    // Exact partition of the rows.
    std::vector<index_t> sorted = lb.rows;
    std::ranges::sort(sorted);
    ASSERT_EQ(sorted.size(), ls.rows.size());
    for (index_t r = 0; r < static_cast<index_t>(sorted.size()); ++r) {
        EXPECT_EQ(sorted[static_cast<std::size_t>(r)], r);
    }
    ASSERT_EQ(lb.level_of.size(), static_cast<std::size_t>(lb.blocks()));
    for (int b = 0; b < lb.blocks(); ++b) {
        const auto rows = lb.block(b);
        ASSERT_FALSE(rows.empty());
        // Unit weights, target 3: blocks hold at most 3 rows...
        EXPECT_LE(rows.size(), 3u);
        // ...and never span levels.
        for (const index_t r : rows) {
            EXPECT_EQ(lvl[static_cast<std::size_t>(r)], lb.level_of[static_cast<std::size_t>(b)]);
        }
    }
}

TEST(LevelBlocks, HeavyRowBecomesItsOwnBlock) {
    // One row outweighing the target must still terminate (single-row clamp).
    const Coo a = disconnected_coo(4, 0, 0);
    const LevelSets ls = build_level_sets(a);
    std::vector<std::int64_t> weight(ls.rows.size(), 1);
    weight[0] = 1000;
    const LevelBlocks lb = subdivide_levels(ls, weight, 2);
    EXPECT_EQ(static_cast<std::size_t>(lb.blocks()), ls.rows.size());
}

}  // namespace
}  // namespace symspmv
