// Autotune subsystem: matrix fingerprints, the persistent plan store, and
// the empirical tuner.
//
// The two load-bearing properties of the subsystem are asserted here: the
// warm-cache property (a second tune() for the same key performs zero timed
// trials and replays the identical decision) and plan-store robustness (a
// truncated, garbage, wrong-version or wrong-key plan file loads as a clean
// cache miss — never a crash, never a silently wrong plan).
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autotune/fingerprint.hpp"
#include "autotune/plan.hpp"
#include "autotune/store.hpp"
#include "autotune/tuner.hpp"
#include "core/error.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "matrix/generators.hpp"

namespace symspmv::autotune {
namespace {

using symspmv::test::random_vector;

Coo test_matrix() { return gen::make_spd(gen::poisson2d(18, 18)); }

/// A fresh, empty scratch directory per call site.
std::filesystem::path scratch_dir(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / ("symspmv_autotune_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

std::string slurp(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void spit(const std::filesystem::path& path, const std::string& content) {
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

// ----------------------------------------------------------- fingerprint --

TEST(Fingerprint, InsertionOrderDoesNotMatter) {
    // The same matrix assembled in two different triplet orders must hash
    // identically once canonicalized.
    const Coo reference = test_matrix();
    Coo shuffled(reference.rows(), reference.cols());
    std::vector<Triplet> entries(reference.entries().begin(), reference.entries().end());
    std::mt19937_64 rng(99);
    std::shuffle(entries.begin(), entries.end(), rng);
    for (const Triplet& t : entries) shuffled.add(t.row, t.col, t.val);
    shuffled.canonicalize();

    EXPECT_EQ(fingerprint(reference), fingerprint(shuffled));
    EXPECT_EQ(to_string(fingerprint(reference)), to_string(fingerprint(shuffled)));
}

TEST(Fingerprint, ValueChangeAltersOnlyTheValueHash) {
    const Coo base = test_matrix();
    const MatrixFingerprint before = fingerprint(base);
    std::vector<Triplet> entries(base.entries().begin(), base.entries().end());
    entries.front().val += 1e-9;  // tiny, but a different bit pattern
    const Coo changed(base.rows(), base.cols(), std::move(entries));

    const MatrixFingerprint after = fingerprint(changed);
    EXPECT_EQ(after.pattern_hash, before.pattern_hash) << "pattern untouched";
    EXPECT_NE(after.value_hash, before.value_hash);
    EXPECT_FALSE(after == before);
    EXPECT_NE(digest(after), digest(before));
}

TEST(Fingerprint, PatternChangeAltersThePatternHash) {
    const Coo base = test_matrix();
    Coo changed = base;
    changed.add(0, base.cols() - 1, 0.5);
    changed.canonicalize();
    EXPECT_NE(fingerprint(changed).pattern_hash, fingerprint(base).pattern_hash);
}

TEST(Fingerprint, DimensionsParticipate) {
    // Identical (empty) pattern, different shape: still distinct keys.
    const Coo a(10, 10);
    const Coo b(11, 10);
    EXPECT_FALSE(fingerprint(a) == fingerprint(b));
    EXPECT_NE(digest(fingerprint(a)), digest(fingerprint(b)));
}

TEST(Fingerprint, RejectsNonCanonicalInput) {
    Coo raw(4, 4);
    raw.add(2, 1, 1.0);
    raw.add(0, 0, 1.0);  // unsorted on purpose
    EXPECT_THROW((void)fingerprint(raw), InternalError);
}

TEST(HardwareSignatureTest, DigestSeparatesPolicies) {
    const HardwareSignature base = local_hardware_signature();
    HardwareSignature pinned = base;
    pinned.pin_threads = true;
    HardwareSignature interleaved = base;
    interleaved.placement = engine::PlacementPolicy::kInterleave;
    EXPECT_NE(digest(base), digest(pinned));
    EXPECT_NE(digest(base), digest(interleaved));
    EXPECT_NE(digest(pinned), digest(interleaved));
    EXPECT_FALSE(to_string(base).empty());
}

// ------------------------------------------------------------ plan store --

PlanKey sample_key() {
    PlanKey key;
    key.fingerprint = fingerprint(test_matrix());
    key.hardware = local_hardware_signature();
    key.search_hash = 0xfeedULL;
    return key;
}

Plan sample_plan() {
    Plan plan;
    plan.kernel = KernelKind::kSssIndexing;
    plan.threads = 2;
    plan.partition = engine::PartitionPolicy::kEvenRows;
    plan.csx_patterns = false;
    plan.expected_seconds_per_op = 1.25e-4;
    return plan;
}

TEST(PlanStore, InMemoryRoundTrip) {
    PlanStore store;  // no directory: memory layer only
    const PlanKey key = sample_key();
    EXPECT_FALSE(store.load(key).has_value());
    store.save(key, sample_plan());
    const auto loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(same_decision(*loaded, sample_plan()));
    EXPECT_TRUE(store.path_for(key).empty());
    EXPECT_FALSE(store.persistent());
    EXPECT_EQ(store.counters().hits, 1);
    EXPECT_EQ(store.counters().misses, 1);
    EXPECT_EQ(store.counters().saves, 1);
    EXPECT_EQ(store.counters().disk_hits, 0);
}

TEST(PlanStore, PersistsAcrossInstances) {
    const auto dir = scratch_dir("persist");
    const PlanKey key = sample_key();
    {
        PlanStore writer(dir.string());
        writer.save(key, sample_plan());
    }
    PlanStore reader(dir.string());  // fresh instance: memory layer is empty
    const auto loaded = reader.load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(same_decision(*loaded, sample_plan()));
    EXPECT_DOUBLE_EQ(loaded->expected_seconds_per_op, sample_plan().expected_seconds_per_op);
    EXPECT_EQ(reader.counters().disk_hits, 1);

    // And no stray temp files from the atomic write.
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
        EXPECT_EQ(e.path().string().find(".tmp"), std::string::npos) << e.path();
    }
}

TEST(PlanStore, TruncatedFileIsACleanMiss) {
    const auto dir = scratch_dir("truncated");
    const PlanKey key = sample_key();
    {
        PlanStore writer(dir.string());
        writer.save(key, sample_plan());
    }
    const std::string full = slurp(PlanStore(dir.string()).path_for(key));
    ASSERT_FALSE(full.empty());
    for (std::size_t cut : {std::size_t{0}, std::size_t{5}, full.size() / 2, full.size() - 2}) {
        PlanStore store(dir.string());
        spit(store.path_for(key), full.substr(0, cut));
        EXPECT_FALSE(store.load(key).has_value()) << "cut at " << cut;
        EXPECT_EQ(store.counters().misses, 1) << "cut at " << cut;
    }
}

TEST(PlanStore, GarbageFileIsACleanMiss) {
    const auto dir = scratch_dir("garbage");
    const PlanKey key = sample_key();
    for (const std::string& garbage :
         {std::string("not a plan file at all"), std::string("symspmv-plan one\n"),
          std::string(2048, 'x'), std::string("symspmv-plan 1\nmatrix banana\n")}) {
        PlanStore store(dir.string());
        spit(store.path_for(key), garbage);
        EXPECT_FALSE(store.load(key).has_value());
    }
}

TEST(PlanStore, WrongVersionIsAMiss) {
    const auto dir = scratch_dir("version");
    const PlanKey key = sample_key();
    {
        PlanStore writer(dir.string());
        writer.save(key, sample_plan());
    }
    PlanStore store(dir.string());
    std::string content = slurp(store.path_for(key));
    const std::string current = "symspmv-plan " + std::to_string(kPlanFormatVersion);
    const auto pos = content.find(current);
    ASSERT_NE(pos, std::string::npos);
    content.replace(pos, current.size(),
                    "symspmv-plan " + std::to_string(kPlanFormatVersion + 1));
    spit(store.path_for(key), content);
    EXPECT_FALSE(store.load(key).has_value());
}

TEST(PlanStore, WrongHardwareSignatureIsAMiss) {
    // Simulate copying a plan cache to a different machine: the file parses,
    // but its embedded hardware signature does not match the requesting
    // key's, so revalidation must reject it.
    const auto dir = scratch_dir("hardware");
    const PlanKey tuned_on = sample_key();
    {
        PlanStore writer(dir.string());
        writer.save(tuned_on, sample_plan());
    }
    PlanKey other_machine = tuned_on;
    other_machine.hardware.hardware_threads += 8;
    other_machine.hardware.compiler = "gcc-0.0";

    PlanStore store(dir.string());
    spit(store.path_for(other_machine), slurp(store.path_for(tuned_on)));
    EXPECT_FALSE(store.load(other_machine).has_value());
    EXPECT_TRUE(store.load(tuned_on).has_value()) << "the original key still hits";
}

TEST(PlanStore, WrongMatrixFingerprintIsAMiss) {
    const auto dir = scratch_dir("matrix");
    const PlanKey key = sample_key();
    {
        PlanStore writer(dir.string());
        writer.save(key, sample_plan());
    }
    PlanKey other = key;
    other.fingerprint.value_hash ^= 1;  // same matrix shape, different values
    PlanStore store(dir.string());
    spit(store.path_for(other), slurp(store.path_for(key)));
    EXPECT_FALSE(store.load(other).has_value());
}

TEST(PlanStore, SerializeParseRoundTrip) {
    const PlanKey key = sample_key();
    std::stringstream buf;
    PlanStore::serialize(buf, key, sample_plan());
    const auto parsed = PlanStore::parse(buf, key);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(same_decision(*parsed, sample_plan()));
}

/// Writes a plan file for @p key whose decision tokens are exactly the
/// given strings, with a *valid* checksum over them — so a parse() miss can
/// only come from the strict numeric parsing, not the integrity line.
std::string handcrafted_plan_file(const PlanKey& key, const std::string& kernel,
                                  const std::string& threads, const std::string& partition,
                                  const std::string& patterns, const std::string& seconds,
                                  const std::string& prefetch = "0") {
    std::uint64_t h = fnv1a(kernel.data(), kernel.size());
    h = fnv1a(threads.data(), threads.size(), h);
    h = fnv1a(partition.data(), partition.size(), h);
    h = fnv1a(patterns.data(), patterns.size(), h);
    h = fnv1a(prefetch.data(), prefetch.size(), h);
    h = fnv1a(seconds.data(), seconds.size(), h);
    std::ostringstream os;
    os << "symspmv-plan " << kPlanFormatVersion << '\n'
       << "matrix " << to_string(key.fingerprint) << '\n'
       << "hardware " << to_string(key.hardware) << '\n'
       << "search " << std::hex << key.search_hash << '\n'
       << "kernel " << kernel << '\n'
       << "threads " << threads << '\n'
       << "partition " << partition << '\n'
       << "csx-patterns " << patterns << '\n'
       << "prefetch " << prefetch << '\n'
       << "seconds " << seconds << '\n'
       << "sum " << std::hex << h << '\n'
       << "end symspmv-plan\n";
    return os.str();
}

/// A pre-bump (v2) plan file: the format before the prefetch field, with a
/// checksum valid *for that format*.  Today's parser must reject it at the
/// version line — a clean revalidation miss, never a misparse.
std::string v2_plan_file(const PlanKey& key, const std::string& kernel,
                         const std::string& threads, const std::string& partition,
                         const std::string& patterns, const std::string& seconds) {
    std::uint64_t h = fnv1a(kernel.data(), kernel.size());
    h = fnv1a(threads.data(), threads.size(), h);
    h = fnv1a(partition.data(), partition.size(), h);
    h = fnv1a(patterns.data(), patterns.size(), h);
    h = fnv1a(seconds.data(), seconds.size(), h);
    std::ostringstream os;
    os << "symspmv-plan 2\n"
       << "matrix " << to_string(key.fingerprint) << '\n'
       << "hardware " << to_string(key.hardware) << '\n'
       << "search " << std::hex << key.search_hash << '\n'
       << "kernel " << kernel << '\n'
       << "threads " << threads << '\n'
       << "partition " << partition << '\n'
       << "csx-patterns " << patterns << '\n'
       << "seconds " << seconds << '\n'
       << "sum " << std::hex << h << '\n'
       << "end symspmv-plan\n";
    return os.str();
}

TEST(PlanStore, GarbageNumericFieldsAreACleanMiss) {
    // Regression for the std::stoi/std::stod parsing: stoi("2x") returned 2
    // (trailing junk silently ignored), stod("1e-4q") returned 1e-4, and a
    // 20-digit thread count threw std::out_of_range.  With std::from_chars
    // every partially-numeric or out-of-range token must be a clean miss.
    const PlanKey key = sample_key();
    const std::string kernel{to_string(KernelKind::kSssIndexing)};
    const std::string partition{engine::to_string(engine::PartitionPolicy::kEvenRows)};

    {  // control: the handcrafted writer produces a loadable file
        std::istringstream in(
            handcrafted_plan_file(key, kernel, "2", partition, "0", "1.25e-04"));
        const auto plan = PlanStore::parse(in, key);
        ASSERT_TRUE(plan.has_value());
        EXPECT_EQ(plan->threads, 2);
    }
    const std::vector<std::pair<std::string, std::string>> garbage = {
        {"2x", "1e-4"},                        // stoi would return 2
        {"banana", "1e-4"},                    //
        {"2.5", "1e-4"},                       // int field with a fraction
        {"+2", "1e-4"},                        // stoi accepted the sign
        {"99999999999999999999", "1e-4"},      // stoi threw out_of_range
        {"2", "1e-4q"},                        // stod would return 1e-4
        {"2", "one"},                          //
        {"2", "1e99999"},                      // stod threw out_of_range
    };
    for (const auto& [threads, seconds] : garbage) {
        std::istringstream in(
            handcrafted_plan_file(key, kernel, threads, partition, "0", seconds));
        EXPECT_FALSE(PlanStore::parse(in, key).has_value())
            << "threads='" << threads << "' seconds='" << seconds << "'";
    }
    for (const std::string& prefetch : {"-1", "8q", "nope", "3.5"}) {
        std::istringstream in(
            handcrafted_plan_file(key, kernel, "2", partition, "0", "1e-4", prefetch));
        EXPECT_FALSE(PlanStore::parse(in, key).has_value()) << "prefetch='" << prefetch << "'";
    }
}

TEST(PlanStore, PrefetchDistanceRoundTrips) {
    const PlanKey key = sample_key();
    Plan plan = sample_plan();
    plan.kernel = KernelKind::kSssIndexing;
    plan.prefetch_distance = 16;
    std::stringstream buf;
    PlanStore::serialize(buf, key, plan);
    const auto parsed = PlanStore::parse(buf, key);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->prefetch_distance, 16);
    EXPECT_TRUE(same_decision(*parsed, plan));
    Plan off = plan;
    off.prefetch_distance = 0;
    EXPECT_FALSE(same_decision(*parsed, off)) << "prefetch is part of the decision";
}

TEST(PlanStore, PreBumpV2FileIsARevalidationReject) {
    // A plan cache written before the prefetch bump: internally consistent
    // v2 files must be clean misses (counted as revalidation rejects), and
    // re-tuning overwrites them with v3.
    const auto dir = scratch_dir("v2_reject");
    const PlanKey key = sample_key();
    PlanStore store(dir.string());
    std::filesystem::create_directories(dir);
    spit(store.path_for(key),
         v2_plan_file(key, std::string(to_string(KernelKind::kSssIndexing)), "2",
                      std::string(engine::to_string(engine::PartitionPolicy::kEvenRows)), "1",
                      "1.25e-04"));
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_EQ(store.counters().revalidation_rejects, 1);
    EXPECT_EQ(store.counters().misses, 1);

    store.save(key, sample_plan());
    const auto reloaded = PlanStore(dir.string()).load(key);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_TRUE(same_decision(*reloaded, sample_plan()));
}

// ----------------------------------------------------------------- tuner --

TEST(Tuner, DefaultCandidateSetIncludesTheRaceKernel) {
    // The reduction-free SSS-race kernel must be a default tuner candidate
    // (and, like every kind, its plan-file name must round-trip).
    const auto& kinds = default_tuning_kinds();
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), KernelKind::kSssRace), kinds.end());
    EXPECT_EQ(parse_kernel_kind(to_string(KernelKind::kSssRace)), KernelKind::kSssRace);
}

TuneOptions fast_options() {
    TuneOptions opts;
    opts.kernels = {KernelKind::kCsr, KernelKind::kSssNaive, KernelKind::kSssIndexing};
    opts.screening_iterations = 1;
    opts.refine_iterations = 2;
    return opts;
}

TEST(Tuner, WarmCachePropertyHolds) {
    const engine::MatrixBundle bundle(test_matrix());
    PlanStore store;
    Tuner tuner(store, fast_options());

    const TuneReport cold = tuner.tune(bundle, 2);
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_GT(cold.trials, 0);
    EXPECT_FALSE(cold.records.empty());
    EXPECT_FALSE(cold.prior_rationale.empty());
    EXPECT_GT(cold.plan.expected_seconds_per_op, 0.0);

    const TuneReport warm = tuner.tune(bundle, 2);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.trials, 0) << "warm path must run zero timed trials";
    EXPECT_TRUE(same_decision(warm.plan, cold.plan));
    EXPECT_EQ(tuner.trials_total(), cold.trials);
}

TEST(Tuner, TunedPlanBuildsACorrectKernel) {
    const engine::MatrixBundle bundle(test_matrix());
    PlanStore store;
    Tuner tuner(store, fast_options());
    const TuneReport report = tuner.tune(bundle, 2);

    engine::ExecutionContext ctx(report.plan.threads);
    const KernelPtr kernel = build_plan(report.plan, bundle, ctx.pool());
    const auto x = random_vector(bundle.coo().rows(), std::uint64_t{7});
    std::vector<value_t> y(x.size()), reference(x.size());
    kernel->spmv(x, y);
    bundle.csr().spmv(x, reference);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(y[i], reference[i], 1e-10 * std::abs(reference[i]) + 1e-12);
    }
}

TEST(Tuner, PersistedPlanSkipsTheSearchInANewStore) {
    // End-to-end tune -> persist -> reload, two PlanStore instances standing
    // in for two processes.
    const auto dir = scratch_dir("tuner");
    const engine::MatrixBundle bundle(test_matrix());

    PlanStore first(dir.string());
    Tuner cold_tuner(first, fast_options());
    const TuneReport cold = cold_tuner.tune(bundle, 2);
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_EQ(first.counters().saves, 1);

    PlanStore second(dir.string());
    Tuner warm_tuner(second, fast_options());
    const TuneReport warm = warm_tuner.tune(bundle, 2);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.trials, 0);
    EXPECT_EQ(warm_tuner.trials_total(), 0);
    EXPECT_TRUE(same_decision(warm.plan, cold.plan));
    EXPECT_EQ(second.counters().disk_hits, 1);
}

TEST(Tuner, RespectsTheTrialBudget) {
    const engine::MatrixBundle bundle(test_matrix());
    PlanStore store;
    TuneOptions opts = fast_options();
    opts.max_trials = 2;
    Tuner tuner(store, opts);
    const TuneReport report = tuner.tune(bundle, 2);
    EXPECT_LE(report.trials, 2);
    EXPECT_GT(report.trials, 0);
}

TEST(Tuner, SearchSpacesKeySeparately) {
    // A plan tuned under one search space must not satisfy a different one:
    // retuning with another kernel set is a miss, not a stale hit.
    const engine::MatrixBundle bundle(test_matrix());
    PlanStore store;
    Tuner csr_only(store, [] {
        TuneOptions o;
        o.kernels = {KernelKind::kCsr};
        o.screening_iterations = 1;
        o.refine_iterations = 1;
        return o;
    }());
    const TuneReport first = csr_only.tune(bundle, 2);
    EXPECT_EQ(first.plan.kernel, KernelKind::kCsr);

    Tuner full(store, fast_options());
    const TuneReport second = full.tune(bundle, 2);
    EXPECT_FALSE(second.cache_hit) << "different search space, different key";
    EXPECT_GT(second.trials, 1);
}

TEST(Tuner, DifferentThreadCountsAreDifferentSearches) {
    TuneOptions opts = fast_options();
    EXPECT_NE(search_space_hash(opts, {1, 2}), search_space_hash(opts, {1, 2, 4}));
    EXPECT_EQ(search_space_hash(opts, {2, 1}), search_space_hash(opts, {1, 2}))
        << "thread order is canonicalized";
}

TEST(Tuner, PrefetchDistancesArePartOfTheSearchIdentity) {
    TuneOptions a = fast_options();
    TuneOptions b = fast_options();
    b.prefetch_distances = {8, 32};
    EXPECT_NE(search_space_hash(a, {2}), search_space_hash(b, {2}));
    TuneOptions canon = b;
    canon.prefetch_distances = {32, -4, 8, 0};  // order/junk-insensitive
    EXPECT_EQ(search_space_hash(b, {2}), search_space_hash(canon, {2}));
}

TEST(Tuner, PrefetchCapableKindsFanOutOverDistances) {
    // One prefetch-capable kind, one distance, delta-only off: the candidate
    // set is {by-nnz, even-rows} x {prefetch 0, prefetch 4} = 4 trials, and
    // the winner's plan carries whichever distance measured fastest.
    const engine::MatrixBundle bundle(test_matrix());
    PlanStore store;
    TuneOptions opts;
    opts.kernels = {KernelKind::kSssIndexing};
    opts.prefetch_distances = {4};
    opts.try_delta_only_csx = false;
    opts.screening_iterations = 1;
    opts.refine_iterations = 1;
    opts.prune_ratio = 1e9;  // measure everything
    Tuner tuner(store, opts);
    const TuneReport report = tuner.tune(bundle, 2);
    EXPECT_EQ(report.trials, 4);
    int with_prefetch = 0;
    for (const TrialRecord& r : report.records) {
        if (r.plan.prefetch_distance > 0) ++with_prefetch;
    }
    EXPECT_EQ(with_prefetch, 2);
    EXPECT_GE(report.plan.prefetch_distance, 0);

    // The winning plan replays through build_plan with the distance applied.
    engine::ExecutionContext ctx(report.plan.threads);
    const KernelPtr kernel = build_plan(report.plan, bundle, ctx.pool());
    const auto x = random_vector(bundle.coo().rows(), std::uint64_t{11});
    std::vector<value_t> y(x.size()), reference(x.size());
    kernel->spmv(x, y);
    bundle.csr().spmv(x, reference);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(y[i], reference[i], 1e-10 * std::abs(reference[i]) + 1e-12);
    }
}

// Regression test for the store's concurrent-access contract (the serving
// daemon loads and saves plans from request workers and the background
// tuner simultaneously).  Two threads hammering the same key must leave
// disk and memory agreeing on one intact winner — under TSan this also
// proves the memory map and counters are free of data races.
TEST(PlanStore, ConcurrentSaveAndLoadOnOneKeyStaysConsistent) {
    const auto dir = scratch_dir("race");
    PlanStore store(dir.string());
    const PlanKey key = sample_key();

    Plan a = sample_plan();
    Plan b = sample_plan();
    b.kernel = KernelKind::kCsr;
    b.threads = 4;

    std::atomic<bool> go{false};
    std::atomic<int> bad_loads{0};
    const auto writer = [&](const Plan& plan) {
        while (!go.load()) {
        }
        for (int i = 0; i < 200; ++i) store.save(key, plan);
    };
    const auto reader = [&] {
        while (!go.load()) {
        }
        for (int i = 0; i < 400; ++i) {
            const auto loaded = store.load(key);
            if (!loaded) continue;  // nothing saved yet
            if (!same_decision(*loaded, a) && !same_decision(*loaded, b)) ++bad_loads;
        }
    };
    std::thread t1(writer, a);
    std::thread t2(writer, b);
    std::thread t3(reader);
    std::thread t4(reader);
    go.store(true);
    t1.join();
    t2.join();
    t3.join();
    t4.join();

    EXPECT_EQ(bad_loads.load(), 0) << "a load observed a torn/mixed plan";

    // Disk and memory agree: a fresh store (no memory layer) parses the
    // file to the same decision the warm store serves.
    const auto warm = store.load(key);
    ASSERT_TRUE(warm.has_value());
    PlanStore fresh(dir.string());
    const auto from_disk = fresh.load(key);
    ASSERT_TRUE(from_disk.has_value()) << "last save left a corrupt/missing file";
    EXPECT_TRUE(same_decision(*warm, *from_disk))
        << "memory winner and disk winner diverged";
    EXPECT_TRUE(same_decision(*from_disk, a) || same_decision(*from_disk, b));
}

}  // namespace
}  // namespace symspmv::autotune
