// Tests for the partitioned-SpM×V communication-volume metric (§V.D).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "matrix/generators.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"
#include "spmv/comm_volume.hpp"

namespace symspmv {
namespace {

TEST(CommVolume, DiagonalMatrixNeedsNoCommunication) {
    Coo coo(40, 40);
    for (index_t i = 0; i < 40; ++i) coo.add(i, i, 2.0);
    coo.canonicalize();
    const Csr csr(coo);
    EXPECT_EQ(communication_volume(csr, split_even(40, 4)), 0);
}

TEST(CommVolume, SinglePartitionNeedsNoCommunication) {
    const Coo coo = gen::make_spd(gen::banded_random(200, 30, 6.0, 3, 0.5));
    const Csr csr(coo);
    EXPECT_EQ(communication_volume(csr, split_even(200, 1)), 0);
}

TEST(CommVolume, HandComputedTridiagonal) {
    // Tridiagonal split in two halves: each half reads exactly one element
    // of the other (the boundary neighbor).
    const Coo coo = gen::make_spd(gen::poisson2d(10, 1));
    const Csr csr(coo);
    EXPECT_EQ(communication_volume(csr, split_even(10, 2)), 2);
}

TEST(CommVolume, CountsDistinctColumnsOnly) {
    // Many references to the same remote column count once per partition.
    Coo coo(20, 20);
    for (index_t i = 0; i < 20; ++i) coo.add(i, i, 5.0);
    for (index_t i = 10; i < 20; ++i) {
        coo.add(i, 0, 1.0);
        coo.add(0, i, 1.0);
    }
    coo.canonicalize();
    const Csr csr(coo);
    // Partition [0,10) reads cols 10..19 (10 remote); [10,20) reads col 0.
    EXPECT_EQ(communication_volume(csr, split_even(20, 2)), 11);
}

TEST(CommVolume, GrowsWithPartitionCount) {
    const Coo coo = gen::make_spd(gen::banded_random(400, 25, 6.0, 7, 0.3));
    const Csr csr(coo);
    const auto vol = [&](int p) { return communication_volume(csr, split_even(400, p)); };
    EXPECT_LE(vol(2), vol(4));
    EXPECT_LE(vol(4), vol(8));
}

TEST(CommVolume, RcmReducesVolumeOfScrambledMatrix) {
    Coo coo = gen::make_spd(gen::poisson2d(24, 24));
    std::vector<index_t> perm(static_cast<std::size_t>(coo.rows()));
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<index_t>(i);
    std::mt19937_64 rng(11);
    std::ranges::shuffle(perm, rng);
    const Coo scrambled = permute_symmetric(coo, perm);
    const Coo reordered = permute_symmetric(scrambled, rcm_permutation(scrambled));
    const auto parts4 = split_even(coo.rows(), 4);
    EXPECT_LT(communication_volume(Csr(reordered), parts4),
              communication_volume(Csr(scrambled), parts4))
        << "bandwidth reduction must cut the remote x reads (§V.D)";
}

}  // namespace
}  // namespace symspmv
