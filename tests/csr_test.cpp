// Tests for the CSR baseline format.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/error.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/dense.hpp"
#include "matrix/generators.hpp"

namespace symspmv {
namespace {

Coo fig1_matrix() {
    // A small general matrix exercising empty rows and row-major order.
    Coo m(5, 5);
    m.add(0, 0, 1.0);
    m.add(0, 3, 2.0);
    m.add(1, 1, 3.0);
    m.add(3, 0, 4.0);
    m.add(3, 2, 5.0);
    m.add(3, 4, 6.0);
    m.add(4, 4, 7.0);
    m.canonicalize();
    return m;
}

TEST(Csr, LayoutMatchesDefinition) {
    const Csr csr(fig1_matrix());
    EXPECT_EQ(csr.rows(), 5);
    EXPECT_EQ(csr.nnz(), 7);
    const std::vector<index_t> want_rowptr = {0, 2, 3, 3, 6, 7};
    const std::vector<index_t> want_colind = {0, 3, 1, 0, 2, 4, 4};
    EXPECT_TRUE(std::equal(want_rowptr.begin(), want_rowptr.end(), csr.rowptr().begin()));
    EXPECT_TRUE(std::equal(want_colind.begin(), want_colind.end(), csr.colind().begin()));
}

TEST(Csr, SizeBytesMatchesEq1) {
    const Csr csr(fig1_matrix());
    // Eq. (1): 12*NNZ + 4*(N+1) = 12*7 + 4*6 = 108.
    EXPECT_EQ(csr.size_bytes(), 108u);
}

TEST(Csr, SpmvMatchesCooOracle) {
    const Coo coo = fig1_matrix();
    const Csr csr(coo);
    const std::vector<value_t> x = {1, -1, 2, 0.5, 3};
    std::vector<value_t> y_csr(5), y_coo(5);
    csr.spmv(x, y_csr);
    coo.spmv(x, y_coo);
    for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y_csr[i], y_coo[i]);
}

TEST(Csr, SpmvRowsComputesPartitionOnly) {
    const Csr csr(fig1_matrix());
    const std::vector<value_t> x = {1, 1, 1, 1, 1};
    std::vector<value_t> y(5, -1.0);
    csr.spmv_rows(3, 5, x, y);
    EXPECT_DOUBLE_EQ(y[0], -1.0);  // untouched
    EXPECT_DOUBLE_EQ(y[3], 15.0);
    EXPECT_DOUBLE_EQ(y[4], 7.0);
}

TEST(Csr, RoundTripThroughCoo) {
    const Coo coo = fig1_matrix();
    const Coo back = Csr(coo).to_coo();
    ASSERT_EQ(back.nnz(), coo.nnz());
    for (index_t i = 0; i < coo.nnz(); ++i) {
        EXPECT_EQ(back.entries()[static_cast<std::size_t>(i)],
                  coo.entries()[static_cast<std::size_t>(i)]);
    }
}

TEST(Csr, RawConstructorValidates) {
    aligned_vector<index_t> rowptr = {0, 1};
    aligned_vector<index_t> colind = {5};  // out of bounds for 1 column
    aligned_vector<value_t> values = {1.0};
    EXPECT_THROW(Csr(1, 1, rowptr, colind, values), InternalError);

    aligned_vector<index_t> bad_rowptr = {0, 2};  // claims 2 nnz, has 1
    aligned_vector<index_t> ok_colind = {0};
    EXPECT_THROW(Csr(1, 1, bad_rowptr, ok_colind, values), InternalError);
}

TEST(Csr, EmptyMatrix) {
    Coo coo(3, 3);
    coo.canonicalize();
    const Csr csr(coo);
    EXPECT_EQ(csr.nnz(), 0);
    const std::vector<value_t> x = {1, 2, 3};
    std::vector<value_t> y(3, 9.0);
    csr.spmv(x, y);
    for (value_t v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Csr, RandomizedAgainstDenseOracle) {
    std::mt19937_64 rng(42);
    for (int trial = 0; trial < 10; ++trial) {
        const Coo coo = gen::banded_random(64, 16, 6.0, 1000 + trial);
        const Csr csr(coo);
        const Dense dense(coo);
        std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
        std::vector<value_t> x(64);
        for (auto& v : x) v = dist(rng);
        std::vector<value_t> y_csr(64), y_dense(64);
        csr.spmv(x, y_csr);
        dense.spmv(x, y_dense);
        for (int i = 0; i < 64; ++i) EXPECT_NEAR(y_csr[i], y_dense[i], 1e-12);
    }
}

}  // namespace
}  // namespace symspmv
