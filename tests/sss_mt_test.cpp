// Tests for the multithreaded symmetric SpM×V kernels: every reduction
// method must match the CSR oracle bit-for-bit in structure (within fp
// tolerance) for any thread count, including repeated calls (local vectors
// must be clean between iterations).
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <algorithm>
#include <random>
#include <tuple>

#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/suite.hpp"
#include "spmv/csr_kernels.hpp"
#include "spmv/sss_kernels.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

TEST(CsrMtKernel, MatchesSerial) {
    const Coo full = gen::banded_random(333, 40, 9.0, 2, 0.2);
    ThreadPool pool(4);
    CsrSerialKernel serial((Csr(full)));
    CsrMtKernel mt(Csr(full), pool);
    const auto x = random_vector(333, 5);
    std::vector<value_t> y1(333), y2(333);
    serial.spmv(x, y1);
    mt.spmv(x, y2);
    for (int i = 0; i < 333; ++i) EXPECT_DOUBLE_EQ(y2[i], y1[i]);
}

TEST(SssSerialKernel, MatchesCsr) {
    const Coo full = gen::banded_random(200, 30, 8.0, 3);
    CsrSerialKernel csr((Csr(full)));
    SssSerialKernel sss((Sss(full)));
    EXPECT_EQ(sss.nnz(), csr.nnz());
    const auto x = random_vector(200, 6);
    std::vector<value_t> y1(200), y2(200);
    csr.spmv(x, y1);
    sss.spmv(x, y2);
    for (int i = 0; i < 200; ++i) EXPECT_NEAR(y2[i], y1[i], 1e-12);
}

using MtCase = std::tuple<int, int>;  // (threads, seed)

class SssMtAllMethods : public ::testing::TestWithParam<MtCase> {};

TEST_P(SssMtAllMethods, AllReductionMethodsMatchCsr) {
    const auto [threads, seed] = GetParam();
    const Coo full =
        gen::banded_random(257, 50, 10.0, static_cast<std::uint64_t>(seed), 0.4);
    const Csr csr(full);
    const auto x = random_vector(257, static_cast<std::uint64_t>(seed) + 100);
    std::vector<value_t> y_ref(257);
    csr.spmv(x, y_ref);

    ThreadPool pool(threads);
    for (ReductionMethod m : {ReductionMethod::kNaive, ReductionMethod::kEffectiveRanges,
                              ReductionMethod::kIndexing}) {
        SssMtKernel kernel(Sss(full), pool, m);
        std::vector<value_t> y(257, -7.0);
        kernel.spmv(x, y);
        for (int i = 0; i < 257; ++i) {
            ASSERT_NEAR(y[i], y_ref[i], 1e-11)
                << to_string(m) << " threads=" << threads << " row=" << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndSeeds, SssMtAllMethods,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8),
                                            ::testing::Values(1, 2, 3)));

TEST(SssMtKernel, RepeatedCallsStayCorrect) {
    // Local vectors must be re-zeroed between iterations by every method.
    const Coo full = gen::banded_random(180, 30, 8.0, 11, 0.5);
    const Csr csr(full);
    ThreadPool pool(4);
    for (ReductionMethod m : {ReductionMethod::kNaive, ReductionMethod::kEffectiveRanges,
                              ReductionMethod::kIndexing}) {
        SssMtKernel kernel(Sss(full), pool, m);
        auto x = random_vector(180, 21);
        std::vector<value_t> y(180);
        for (int iter = 0; iter < 5; ++iter) {
            kernel.spmv(x, y);
            std::vector<value_t> y_ref(180);
            csr.spmv(x, y_ref);
            for (int i = 0; i < 180; ++i) {
                // Iterated products grow like ||A||^k, so tolerance is relative.
                ASSERT_NEAR(y[i], y_ref[i], 1e-12 * std::max(1.0, std::abs(y_ref[i])))
                    << to_string(m) << " iter=" << iter << " row=" << i;
            }
            x.swap(y);  // swap input/output like the measurement framework
        }
    }
}

TEST(SssMtKernel, MoreThreadsThanRows) {
    const Coo full = gen::banded_random(6, 2, 3.0, 1);
    const Csr csr(full);
    ThreadPool pool(12);
    const auto x = random_vector(6, 9);
    std::vector<value_t> y_ref(6);
    csr.spmv(x, y_ref);
    for (ReductionMethod m : {ReductionMethod::kNaive, ReductionMethod::kEffectiveRanges,
                              ReductionMethod::kIndexing}) {
        SssMtKernel kernel(Sss(full), pool, m);
        std::vector<value_t> y(6);
        kernel.spmv(x, y);
        for (int i = 0; i < 6; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12) << to_string(m);
    }
}

TEST(SssMtKernel, HighBandwidthMatrix) {
    // The §V.B corner case: most non-zeros far from the diagonal.
    const Coo full = gen::banded_random(400, 399, 8.0, 13, 1.0);
    const Csr csr(full);
    ThreadPool pool(8);
    const auto x = random_vector(400, 31);
    std::vector<value_t> y_ref(400);
    csr.spmv(x, y_ref);
    for (ReductionMethod m : {ReductionMethod::kNaive, ReductionMethod::kEffectiveRanges,
                              ReductionMethod::kIndexing}) {
        SssMtKernel kernel(Sss(full), pool, m);
        std::vector<value_t> y(400);
        kernel.spmv(x, y);
        for (int i = 0; i < 400; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-11) << to_string(m);
    }
}

TEST(SssMtKernel, FootprintAccountsLocalVectors) {
    const Coo full = gen::banded_random(512, 64, 8.0, 15);
    ThreadPool pool(4);
    const Sss sss(full);
    const std::size_t base = sss.size_bytes();
    SssMtKernel naive(Sss(full), pool, ReductionMethod::kNaive);
    SssMtKernel eff(Sss(full), pool, ReductionMethod::kEffectiveRanges);
    SssMtKernel idx(Sss(full), pool, ReductionMethod::kIndexing);
    // Naive: 4 full local vectors = 4*512*8 bytes over the matrix.
    EXPECT_EQ(naive.footprint_bytes(), base + 4u * 512u * 8u);
    // Effective ranges holds sum(start_i) <= 3*512 rows of local vectors.
    EXPECT_LT(eff.footprint_bytes(), naive.footprint_bytes());
    // Indexing adds its 8-byte entries on top of the effective-range locals.
    EXPECT_GE(idx.footprint_bytes(), eff.footprint_bytes());
    EXPECT_EQ(idx.footprint_bytes(),
              eff.footprint_bytes() + idx.reduction_index().bytes());
}

TEST(SssMtKernel, PhaseBreakdownIsPopulated) {
    const Coo full = gen::banded_random(2048, 256, 16.0, 17, 0.3);
    ThreadPool pool(4);
    SssMtKernel kernel(Sss(full), pool, ReductionMethod::kIndexing);
    const auto x = random_vector(2048, 3);
    std::vector<value_t> y(2048);
    kernel.spmv(x, y);
    const SpmvPhases phases = kernel.last_phases();
    EXPECT_GT(phases.multiply_seconds, 0.0);
    EXPECT_GE(phases.reduction_seconds, 0.0);
}

TEST(SssMtKernel, MultiplyPhaseExcludesBarrierWait) {
    // Regression: the multiply timer used to be sampled *after* the in-job
    // barrier, so thread 0's reported multiply time silently absorbed its
    // wait for the slowest peer.  Give thread 0 a single row and thread 1
    // everything else: the multiply phase (sampled by thread 0) must then
    // be a small fraction of the total, not ~all of it.
    const Coo full = gen::banded_random(8000, 60, 24.0, 21, 0.1);
    const index_t n = full.rows();
    ThreadPool pool(2);
    SssMtKernel kernel(Sss(full), pool, ReductionMethod::kIndexing,
                       {RowRange{0, 1}, RowRange{1, n}});
    const auto x = random_vector(n, 77);
    std::vector<value_t> y(static_cast<std::size_t>(n));
    kernel.spmv(x, y);  // warm-up (first-touch, page faults)

    // The skewed partition must still be correct.
    const Csr csr(full);
    std::vector<value_t> y_ref(static_cast<std::size_t>(n));
    csr.spmv(x, y_ref);
    for (index_t i = 0; i < n; ++i) {
        ASSERT_NEAR(y[static_cast<std::size_t>(i)], y_ref[static_cast<std::size_t>(i)], 1e-10);
    }

    // Timing assertions are noisy; accept the best of a few repeats.
    double best_fraction = 1.0;
    for (int rep = 0; rep < 5; ++rep) {
        kernel.spmv(x, y);
        const SpmvPhases phases = kernel.last_phases();
        ASSERT_GT(phases.total(), 0.0);
        best_fraction = std::min(best_fraction, phases.multiply_seconds / phases.total());
    }
    EXPECT_LT(best_fraction, 0.5) << "multiply phase still includes the barrier wait";
}

TEST(SssMtKernel, NameReflectsMethod) {
    const Coo full = gen::banded_random(64, 8, 4.0, 1);
    ThreadPool pool(2);
    EXPECT_EQ(SssMtKernel(Sss(full), pool, ReductionMethod::kNaive).name(), "SSS-naive");
    EXPECT_EQ(SssMtKernel(Sss(full), pool, ReductionMethod::kEffectiveRanges).name(), "SSS-eff");
    EXPECT_EQ(SssMtKernel(Sss(full), pool, ReductionMethod::kIndexing).name(), "SSS-idx");
}

}  // namespace
}  // namespace symspmv
