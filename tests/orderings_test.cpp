// Tests for the King and Sloan orderings and the profile metric.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"
#include "reorder/orderings.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"

namespace symspmv {
namespace {

/// Random symmetric permutation scrambles the natural band ordering.
Coo scrambled(const Coo& a, std::uint64_t seed) {
    std::vector<index_t> perm(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<index_t>(i);
    std::mt19937_64 rng(seed);
    std::ranges::shuffle(perm, rng);
    return permute_symmetric(a, perm);
}

TEST(Profile, HandComputedExample) {
    Coo coo(4, 4);
    coo.add(0, 0, 1.0);
    coo.add(1, 1, 1.0);
    coo.add(2, 0, 1.0);  // row 2 reaches back to col 0: contributes 2
    coo.add(2, 2, 1.0);
    coo.add(3, 2, 1.0);  // row 3 reaches back to col 2: contributes 1
    coo.add(3, 3, 1.0);
    coo.add(0, 2, 1.0);  // upper entries are ignored by profile()
    coo.add(2, 3, 1.0);
    coo.canonicalize();
    EXPECT_EQ(profile(coo), 3);
}

TEST(Profile, ZeroForDiagonalMatrix) {
    Coo coo(10, 10);
    for (index_t i = 0; i < 10; ++i) coo.add(i, i, 2.0);
    coo.canonicalize();
    EXPECT_EQ(profile(coo), 0);
}

class OrderingAlgorithms : public ::testing::TestWithParam<const char*> {
   protected:
    static std::vector<index_t> run(const char* name, const Coo& a) {
        if (std::string_view(name) == "king") return king_permutation(a);
        if (std::string_view(name) == "sloan") return sloan_permutation(a);
        return rcm_permutation(a);
    }
};

TEST_P(OrderingAlgorithms, ProducesAValidPermutation) {
    const Coo a = scrambled(gen::make_spd(gen::poisson2d(16, 16)), 1);
    const auto perm = run(GetParam(), a);
    EXPECT_TRUE(is_permutation(perm));
}

TEST_P(OrderingAlgorithms, ReducesBandwidthOfScrambledStencil) {
    const Coo natural = gen::make_spd(gen::poisson2d(20, 20));
    const Coo a = scrambled(natural, 2);
    const auto perm = run(GetParam(), a);
    const Coo reordered = permute_symmetric(a, perm);
    EXPECT_LT(bandwidth(reordered), bandwidth(a) / 2)
        << GetParam() << ": " << bandwidth(a) << " -> " << bandwidth(reordered);
}

TEST_P(OrderingAlgorithms, ReducesProfileOfScrambledStencil) {
    const Coo a = scrambled(gen::make_spd(gen::poisson2d(18, 18)), 3);
    const auto perm = run(GetParam(), a);
    const Coo reordered = permute_symmetric(a, perm);
    EXPECT_LT(profile(reordered), profile(a) / 2);
}

TEST_P(OrderingAlgorithms, HandlesDisconnectedComponents) {
    // Two disjoint paths.
    Coo coo(8, 8);
    for (index_t i = 0; i < 8; ++i) coo.add(i, i, 4.0);
    for (index_t i : {0, 1, 2}) {
        coo.add(i, i + 1, -1.0);
        coo.add(i + 1, i, -1.0);
    }
    for (index_t i : {4, 5, 6}) {
        coo.add(i, i + 1, -1.0);
        coo.add(i + 1, i, -1.0);
    }
    coo.canonicalize();
    const auto perm = run(GetParam(), coo);
    EXPECT_TRUE(is_permutation(perm));
    const Coo reordered = permute_symmetric(coo, perm);
    EXPECT_LE(bandwidth(reordered), 1);  // both paths become tridiagonal
}

TEST_P(OrderingAlgorithms, SpectrumPreservingOnSpmv) {
    // Reordering must not change the product (up to the permutation).
    const Coo a = scrambled(gen::make_spd(gen::banded_random(150, 12, 5.0, 5)), 4);
    const auto perm = run(GetParam(), a);
    const Coo reordered = permute_symmetric(a, perm);
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> x(static_cast<std::size_t>(a.rows()));
    for (auto& v : x) v = dist(rng);
    std::vector<value_t> y(x.size());
    std::vector<value_t> yp(x.size());
    a.spmv(x, y);
    reordered.spmv(permute_vector(x, perm), yp);
    const auto expected = permute_vector(y, perm);
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_NEAR(expected[i], yp[i], 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, OrderingAlgorithms,
                         ::testing::Values("rcm", "king", "sloan"));

TEST(OrderingQuality, SloanProfileCompetitiveWithRcm) {
    // Sloan's selling point: profile at least in RCM's ballpark (usually
    // better on FEM meshes).  Allow 1.5x slack — it is a heuristic.
    const Coo a = scrambled(gen::make_spd(gen::poisson2d(24, 24)), 6);
    const Coo by_rcm = permute_symmetric(a, rcm_permutation(a));
    const Coo by_sloan = permute_symmetric(a, sloan_permutation(a));
    EXPECT_LT(profile(by_sloan), profile(by_rcm) * 3 / 2);
}

TEST(OrderingQuality, KingFrontierNeverWorseThanRandomOrder) {
    const Coo a = scrambled(gen::make_spd(gen::banded_random(200, 8, 4.0, 7)), 7);
    const Coo by_king = permute_symmetric(a, king_permutation(a));
    EXPECT_LT(profile(by_king), profile(a));
}

}  // namespace
}  // namespace symspmv
