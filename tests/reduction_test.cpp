// Tests for the reduction index (§III.C) and the working-set models.
#include <gtest/gtest.h>

#include <set>

#include "core/partition.hpp"
#include "matrix/generators.hpp"
#include "matrix/sss.hpp"
#include "spmv/reduction.hpp"

namespace symspmv {
namespace {

Sss make_sss(index_t n, index_t band, double per_row, std::uint64_t seed, double scatter = 0.0) {
    return Sss(gen::banded_random(n, band, per_row, seed, scatter));
}

TEST(ReductionIndex, EmptyForSingleThread) {
    const Sss sss = make_sss(100, 10, 6.0, 1);
    const auto parts = split_by_nnz(sss.rowptr(), 1);
    const ReductionIndex index(sss, parts);
    EXPECT_TRUE(index.entries().empty());
    EXPECT_EQ(index.effective_region_rows(), 0);
    EXPECT_EQ(index.density(), 0.0);
}

TEST(ReductionIndex, EntriesAreExactlyTheConflictingRows) {
    // Hand-built 6x6 symmetric matrix; 2 threads.
    Coo full(6, 6);
    const auto add_sym = [&](index_t r, index_t c, value_t v) {
        full.add(r, c, v);
        if (r != c) full.add(c, r, v);
    };
    for (index_t i = 0; i < 6; ++i) add_sym(i, i, 4.0);
    add_sym(3, 0, 1.0);  // thread 1 (rows 3-5) conflicts at row 0
    add_sym(4, 0, 1.0);  // duplicate conflict row 0 -> single entry
    add_sym(5, 2, 1.0);  // conflict at row 2
    add_sym(1, 0, 1.0);  // thread 0 internal, no conflict
    full.canonicalize();
    const Sss sss(full);
    const std::vector<RowRange> parts = {{0, 3}, {3, 6}};
    const ReductionIndex index(sss, parts);
    ASSERT_EQ(index.entries().size(), 2u);
    EXPECT_EQ(index.entries()[0], (ReductionEntry{0, 1}));
    EXPECT_EQ(index.entries()[1], (ReductionEntry{2, 1}));
    EXPECT_EQ(index.effective_region_rows(), 3);  // thread 1's region is rows 0-2
    EXPECT_NEAR(index.density(), 2.0 / 3.0, 1e-12);
}

TEST(ReductionIndex, EntriesSortedByIdx) {
    const Sss sss = make_sss(500, 60, 10.0, 3, 0.4);
    const auto parts = split_by_nnz(sss.rowptr(), 8);
    const ReductionIndex index(sss, parts);
    const auto e = index.entries();
    for (std::size_t i = 1; i < e.size(); ++i) {
        EXPECT_LE(e[i - 1].idx, e[i].idx);
        if (e[i - 1].idx == e[i].idx) {
            EXPECT_LT(e[i - 1].vid, e[i].vid);
        }
    }
}

TEST(ReductionIndex, NoDuplicateEntries) {
    const Sss sss = make_sss(300, 50, 12.0, 5, 0.5);
    const auto parts = split_by_nnz(sss.rowptr(), 6);
    const ReductionIndex index(sss, parts);
    std::set<std::pair<index_t, int>> seen;
    for (const ReductionEntry& e : index.entries()) {
        EXPECT_TRUE(seen.emplace(e.idx, e.vid).second) << "duplicate (" << e.idx << "," << e.vid
                                                       << ")";
    }
}

TEST(ReductionIndex, ChunksCoverAllEntriesWithoutSplittingIdx) {
    const Sss sss = make_sss(400, 80, 10.0, 7, 0.6);
    for (int p : {2, 3, 4, 7, 8}) {
        const auto parts = split_by_nnz(sss.rowptr(), p);
        const ReductionIndex index(sss, parts);
        const auto chunks = index.chunk_ptr();
        ASSERT_EQ(chunks.size(), static_cast<std::size_t>(p) + 1);
        EXPECT_EQ(chunks.front(), 0u);
        EXPECT_EQ(chunks.back(), index.entries().size());
        for (std::size_t t = 1; t < chunks.size(); ++t) {
            EXPECT_LE(chunks[t - 1], chunks[t]);
            // No idx value may straddle a chunk boundary.
            const std::size_t cut = chunks[t];
            if (cut > 0 && cut < index.entries().size()) {
                EXPECT_NE(index.entries()[cut - 1].idx, index.entries()[cut].idx);
            }
        }
    }
}

TEST(ReductionIndex, VidZeroNeverAppears) {
    // Thread 0 starts at row 0: its effective region is empty by definition.
    const Sss sss = make_sss(300, 40, 8.0, 9, 0.3);
    const auto parts = split_by_nnz(sss.rowptr(), 4);
    const ReductionIndex index(sss, parts);
    for (const ReductionEntry& e : index.entries()) EXPECT_GT(e.vid, 0);
}

TEST(ReductionIndex, DensityDecreasesWithThreadCount) {
    // Fig. 4: the effective regions get sparser as threads are added.
    const Sss sss = make_sss(4096, 128, 12.0, 13, 0.1);
    double prev = 1.0;
    for (int p : {2, 8, 32, 128}) {
        const auto parts = split_by_nnz(sss.rowptr(), p);
        const ReductionIndex index(sss, parts);
        const double d = index.density();
        EXPECT_LE(d, prev * 1.05) << "density should not grow with threads (p=" << p << ")";
        prev = d;
    }
    EXPECT_LT(prev, 0.5);
}

TEST(WorkingSet, MatchesPaperFormulas) {
    const Sss sss = make_sss(1000, 100, 10.0, 17, 0.2);
    const int p = 8;
    const auto parts = split_by_nnz(sss.rowptr(), p);
    const ReductionWorkingSet ws = reduction_working_set(sss, parts);
    // Eq. (3): naive = 8 p N.
    EXPECT_EQ(ws.naive, 8LL * p * 1000);
    // Eq. (4): effective ~= 4 (p-1) N — exact value is 8 * sum(start_i);
    // with near-equal partitions the approximation holds within ~20%.
    EXPECT_NEAR(static_cast<double>(ws.effective), 4.0 * (p - 1) * 1000,
                0.2 * 4.0 * (p - 1) * 1000);
    // Eq. (5)/(6): indexing = 16 bytes per indexed entry ~= 16 * eff_rows * d.
    const ReductionIndex index(sss, parts);
    EXPECT_EQ(ws.indexing, static_cast<std::int64_t>(16 * index.entries().size()));
    EXPECT_DOUBLE_EQ(ws.density, index.density());
    // The indexing working set must be well below the effective-ranges one
    // whenever the regions are sparse.
    if (ws.density < 0.4) {
        EXPECT_LT(ws.indexing, ws.effective);
    }
}

TEST(WorkingSet, IndexingStabilizesWithThreads) {
    // Fig. 5: naive/effective grow linearly with p; indexing flattens out.
    const Sss sss = make_sss(8192, 256, 10.0, 21, 0.1);
    const auto ws4 = reduction_working_set(sss, split_by_nnz(sss.rowptr(), 4));
    const auto ws32 = reduction_working_set(sss, split_by_nnz(sss.rowptr(), 32));
    const double naive_growth = static_cast<double>(ws32.naive) / ws4.naive;
    const double idx_growth = static_cast<double>(ws32.indexing) / ws4.indexing;
    EXPECT_NEAR(naive_growth, 8.0, 1e-9);
    EXPECT_LT(idx_growth, naive_growth / 2.0);
}

}  // namespace
}  // namespace symspmv
