// Synchronization layer: the hybrid SpinBarrier and the persistent parallel
// region (ThreadPool::run_many / the hot run() dispatch).
//
// These tests pin down the contracts the §III.A fix rests on: generation
// reuse without re-arming, poison/unwind on both the spinning and the parked
// wait path, and run_many's one-wake-per-loop semantics including error
// propagation and pool reuse afterwards.  The suite is expected to stay clean
// under TSan — the memory-ordering claims in core/thread_pool.cpp are only as
// good as a race-detector pass over exactly these scenarios.
#include <gtest/gtest.h>

#include <atomic>
#include <climits>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/spin_barrier.hpp"
#include "core/spin_wait.hpp"
#include "core/thread_pool.hpp"
#include "core/topology.hpp"

namespace symspmv {
namespace {

// ---------------------------------------------------------------------------
// SpinBarrier

TEST(SpinBarrier, SingleThreadPassesImmediately) {
    SpinBarrier barrier(1);
    for (int g = 0; g < 100; ++g) barrier.arrive_and_wait();  // never blocks
    EXPECT_FALSE(barrier.poisoned());
}

TEST(SpinBarrier, ExplicitBudgetIsStored) {
    EXPECT_EQ(SpinBarrier(2, 5).spin_budget(), 5);
    EXPECT_EQ(SpinBarrier(2, 0).spin_budget(), 0);
}

TEST(SpinBarrier, DefaultBudgetCollapsesWhenOversubscribed) {
    // The affinity-aware default: spinning is pointless when the waiters
    // outnumber the CPUs — the thread being waited for needs this core.
    // Only checkable when SYMSPMV_SPIN does not force a budget.
    if (spin_budget_override() >= 0) GTEST_SKIP() << "SYMSPMV_SPIN overrides the default";
    const unsigned cpus = std::thread::hardware_concurrency();
    if (cpus == 0) GTEST_SKIP() << "hardware_concurrency unknown";
    EXPECT_EQ(SpinBarrier(static_cast<int>(cpus) + 1).spin_budget(), 0);
}

/// Runs @p threads threads through @p generations barrier generations and
/// checks that no thread ever observes a torn generation: a shared counter
/// bumped once per thread per generation must read threads*(g+1) after the
/// g-th crossing on every thread.
void run_generations(int threads, int generations, int spin_budget) {
    SpinBarrier barrier(threads, spin_budget);
    std::atomic<int> arrivals{0};
    std::atomic<bool> torn{false};
    std::vector<std::thread> crew;
    crew.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        crew.emplace_back([&] {
            for (int g = 0; g < generations; ++g) {
                arrivals.fetch_add(1, std::memory_order_relaxed);
                barrier.arrive_and_wait();
                // Everyone from this generation has arrived; nobody from the
                // next can have passed the barrier yet on this thread's turn.
                const int seen = arrivals.load(std::memory_order_relaxed);
                if (seen < threads * (g + 1)) torn.store(true, std::memory_order_relaxed);
                barrier.arrive_and_wait();  // second phase: generation reuse
            }
        });
    }
    for (std::thread& th : crew) th.join();
    EXPECT_FALSE(torn.load());
    EXPECT_EQ(arrivals.load(), threads * generations);
}

TEST(SpinBarrier, GenerationReuseOnTheSpinPath) {
    run_generations(/*threads=*/4, /*generations=*/200, /*spin_budget=*/INT_MAX);
}

TEST(SpinBarrier, GenerationReuseOnTheParkPath) {
    run_generations(/*threads=*/4, /*generations=*/200, /*spin_budget=*/0);
}

TEST(SpinBarrier, PoisonedAtEntryThrows) {
    SpinBarrier barrier(2);
    barrier.poison();
    EXPECT_TRUE(barrier.poisoned());
    EXPECT_THROW(barrier.arrive_and_wait(), SpinBarrier::Poisoned);
}

/// One thread waits at the barrier on the given budget; the main thread
/// poisons it.  The waiter must unwind with Poisoned instead of waiting for
/// an arrival that will never come — on the spin path (huge budget) and on
/// the park path (budget 0, futex wait) alike.
void poison_unwinds_waiter(int spin_budget) {
    SpinBarrier barrier(2, spin_budget);
    std::atomic<bool> unwound{false};
    std::thread waiter([&] {
        try {
            barrier.arrive_and_wait();
        } catch (const SpinBarrier::Poisoned&) {
            unwound.store(true, std::memory_order_release);
        }
    });
    // No handshake needed: poison() wakes both a spinning and a parked
    // waiter, and a waiter that arrives after the poison throws at entry.
    barrier.poison();
    waiter.join();
    EXPECT_TRUE(unwound.load(std::memory_order_acquire));
}

TEST(SpinBarrier, PoisonDuringSpinUnwindsWaiter) { poison_unwinds_waiter(INT_MAX); }

TEST(SpinBarrier, PoisonDuringParkUnwindsWaiter) { poison_unwinds_waiter(0); }

TEST(SpinBarrier, ResetReArmsAfterPoison) {
    SpinBarrier barrier(2, /*spin_budget=*/0);
    barrier.poison();
    EXPECT_THROW(barrier.arrive_and_wait(), SpinBarrier::Poisoned);
    barrier.reset();
    EXPECT_FALSE(barrier.poisoned());
    std::thread peer([&] { barrier.arrive_and_wait(); });
    barrier.arrive_and_wait();  // completes normally: the barrier works again
    peer.join();
}

// ---------------------------------------------------------------------------
// ThreadPool: persistent-region dispatch

TEST(RunMany, ExecutesEveryIterationInOrderPerWorker) {
    constexpr int kThreads = 3;
    constexpr int kIters = 50;
    ThreadPool pool(kThreads);
    std::vector<std::vector<int>> seen(kThreads);
    pool.run_many(kIters, [&](int tid, int i) {
        seen[static_cast<std::size_t>(tid)].push_back(i);
    });
    for (int t = 0; t < kThreads; ++t) {
        ASSERT_EQ(seen[static_cast<std::size_t>(t)].size(), static_cast<std::size_t>(kIters));
        for (int i = 0; i < kIters; ++i) {
            EXPECT_EQ(seen[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)], i);
        }
    }
}

TEST(RunMany, ZeroIterationsIsANoOpAndNegativeThrows) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.run_many(0, [&](int, int) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    EXPECT_THROW(pool.run_many(-1, [&](int, int) {}), InternalError);
}

TEST(RunMany, BarrierSynchronizesIterationsAcrossWorkers) {
    // The measure/CG usage pattern: iteration i+1 must not start on any
    // worker before iteration i finished on every worker.  With an
    // end-of-iteration barrier, a per-iteration arrival counter can never be
    // observed mid-iteration at a value from a previous iteration.
    constexpr int kThreads = 4;
    constexpr int kIters = 100;
    ThreadPool pool(kThreads);
    std::atomic<int> in_iteration{0};
    std::atomic<bool> overlap{false};
    pool.run_many(kIters, [&](int, int) {
        const int inside = in_iteration.fetch_add(1, std::memory_order_acq_rel);
        if (inside >= kThreads) overlap.store(true, std::memory_order_relaxed);
        pool.barrier();  // end of iteration: everyone leaves together
        in_iteration.fetch_sub(1, std::memory_order_acq_rel);
        pool.barrier();  // nobody re-enters before the counters settle
    });
    EXPECT_FALSE(overlap.load());
}

TEST(RunMany, FirstExceptionIsRethrownAndThePoolStaysUsable) {
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    try {
        pool.run_many(10, [&](int tid, int i) {
            if (tid == 1 && i == 3) throw std::runtime_error("iteration failed");
            pool.barrier();  // peers block here; the poison unwinds them
            completed.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected the worker exception to be rethrown";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "iteration failed");
    }
    // The failed region must leave the pool (and its re-armed barrier) fully
    // functional: a two-phase job straight after runs to completion.
    std::atomic<int> after{0};
    pool.run([&](int) {
        pool.barrier();
        after.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(after.load(), 3);
}

TEST(RunMany, ThrowingBeforeAnyBarrierStillCompletes) {
    // A worker dying where no peer is at a barrier must not hang the join:
    // the others simply finish their iterations.
    ThreadPool pool(2);
    EXPECT_THROW(pool.run_many(4,
                               [&](int tid, int) {
                                   if (tid == 0) throw std::runtime_error("early");
                               }),
                 std::runtime_error);
    std::atomic<int> calls{0};
    pool.run([&](int) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 2);
}

TEST(RunMany, OversubscribedPoolCompletes) {
    // More workers than CPUs: the spin budget collapses to zero and every
    // wait parks, but the region semantics are unchanged.
    const unsigned cpus = std::thread::hardware_concurrency();
    const int threads = cpus == 0 ? 8 : static_cast<int>(cpus) * 2 + 1;
    ThreadPool pool(threads);
    std::atomic<int> calls{0};
    pool.run_many(8, [&](int, int) {
        calls.fetch_add(1, std::memory_order_relaxed);
        pool.barrier();
    });
    EXPECT_EQ(calls.load(), threads * 8);
}

TEST(RunMany, BackToBackRegionsReuseTheHotPath) {
    // Hammers the generation-word handshake: many small regions back to
    // back, alternating run() and run_many(), must neither deadlock nor skip
    // a dispatch.
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    for (int round = 0; round < 100; ++round) {
        pool.run([&](int) { calls.fetch_add(1, std::memory_order_relaxed); });
        pool.run_many(3, [&](int, int) { calls.fetch_add(1, std::memory_order_relaxed); });
    }
    EXPECT_EQ(calls.load(), 100 * (2 + 2 * 3));
}

TEST(RunMany, StatsCountOneDispatchPerRegion) {
    ThreadPool pool(2);
    const ThreadPool::Stats before = pool.stats();
    pool.run([](int) {});
    pool.run_many(16, [](int, int) {});
    const ThreadPool::Stats after = pool.stats();
    // The whole point of run_many: 16 iterations cost ONE dispatch.
    EXPECT_EQ(after.jobs_dispatched - before.jobs_dispatched, 2u);
}

TEST(ThreadPool, LegacyPinCtorRoutesThroughTopology) {
    // The bool constructor must produce the topology layer's compact map,
    // not the old modulo-over-logical-ids layout.
    const int threads = 2;
    const std::vector<int> expected = pin_map(local_topology(), threads, PinStrategy::kCompact);
    ThreadPool pool(threads, /*pin_threads=*/true);
    ASSERT_EQ(static_cast<int>(expected.size()), threads);
    for (int tid = 0; tid < threads; ++tid) {
        EXPECT_EQ(pool.pin_cpu(tid), expected[static_cast<std::size_t>(tid)]);
    }
}

}  // namespace
}  // namespace symspmv
