// Tests for the COO exchange format.
#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "matrix/coo.hpp"

namespace symspmv {
namespace {

Coo small_symmetric() {
    // The 8x8 example of Fig. 8 in spirit: symmetric, diagonal present.
    Coo m(4, 4);
    m.add(0, 0, 2.0);
    m.add(1, 1, 3.0);
    m.add(2, 2, 4.0);
    m.add(3, 3, 5.0);
    m.add(1, 0, 1.5);
    m.add(0, 1, 1.5);
    m.add(3, 1, -0.5);
    m.add(1, 3, -0.5);
    m.canonicalize();
    return m;
}

TEST(Coo, CanonicalizeSortsRowMajor) {
    Coo m(3, 3);
    m.add(2, 1, 1.0);
    m.add(0, 2, 2.0);
    m.add(0, 1, 3.0);
    m.canonicalize();
    const auto e = m.entries();
    ASSERT_EQ(e.size(), 3u);
    EXPECT_EQ(e[0], (Triplet{0, 1, 3.0}));
    EXPECT_EQ(e[1], (Triplet{0, 2, 2.0}));
    EXPECT_EQ(e[2], (Triplet{2, 1, 1.0}));
    EXPECT_TRUE(m.is_canonical());
}

TEST(Coo, CanonicalizeSumsDuplicates) {
    Coo m(2, 2);
    m.add(1, 0, 1.0);
    m.add(1, 0, 2.5);
    m.add(0, 0, 1.0);
    m.canonicalize();
    ASSERT_EQ(m.nnz(), 2);
    EXPECT_EQ(m.entries()[1], (Triplet{1, 0, 3.5}));
}

TEST(Coo, AddOutOfBoundsThrows) {
    Coo m(2, 2);
    EXPECT_THROW(m.add(2, 0, 1.0), InternalError);
    EXPECT_THROW(m.add(0, -1, 1.0), InternalError);
}

TEST(Coo, ConstructorValidatesEntries) {
    std::vector<Triplet> bad = {{5, 0, 1.0}};
    EXPECT_THROW(Coo(2, 2, bad), InternalError);
}

TEST(Coo, IsSymmetricDetectsSymmetry) {
    EXPECT_TRUE(small_symmetric().is_symmetric());
}

TEST(Coo, IsSymmetricDetectsValueAsymmetry) {
    Coo m(2, 2);
    m.add(0, 1, 1.0);
    m.add(1, 0, 2.0);
    m.canonicalize();
    EXPECT_FALSE(m.is_symmetric());
}

TEST(Coo, IsSymmetricDetectsStructureAsymmetry) {
    Coo m(2, 2);
    m.add(0, 1, 1.0);
    m.canonicalize();
    EXPECT_FALSE(m.is_symmetric());
}

TEST(Coo, NonSquareIsNeverSymmetric) {
    Coo m(2, 3);
    m.canonicalize();
    EXPECT_FALSE(m.is_symmetric());
}

TEST(Coo, StrictLowerDropsDiagonalAndUpper) {
    const Coo lower = small_symmetric().strict_lower();
    ASSERT_EQ(lower.nnz(), 2);
    for (const Triplet& t : lower.entries()) EXPECT_GT(t.row, t.col);
}

TEST(Coo, LowerKeepsDiagonal) {
    const Coo lower = small_symmetric().lower();
    EXPECT_EQ(lower.nnz(), 6);  // 4 diagonal + 2 strictly lower
    for (const Triplet& t : lower.entries()) EXPECT_GE(t.row, t.col);
}

TEST(Coo, TransposeRoundTrip) {
    Coo m(2, 3);
    m.add(0, 2, 1.0);
    m.add(1, 0, -2.0);
    m.canonicalize();
    const Coo t = m.transpose();
    EXPECT_EQ(t.rows(), 3);
    EXPECT_EQ(t.cols(), 2);
    const Coo back = t.transpose();
    ASSERT_EQ(back.nnz(), m.nnz());
    for (index_t i = 0; i < m.nnz(); ++i) {
        EXPECT_EQ(back.entries()[static_cast<std::size_t>(i)],
                  m.entries()[static_cast<std::size_t>(i)]);
    }
}

TEST(Coo, MirrorLowerToFullRestoresSymmetricMatrix) {
    const Coo full = small_symmetric();
    const Coo mirrored = full.lower().mirror_lower_to_full();
    ASSERT_EQ(mirrored.nnz(), full.nnz());
    for (index_t i = 0; i < full.nnz(); ++i) {
        EXPECT_EQ(mirrored.entries()[static_cast<std::size_t>(i)],
                  full.entries()[static_cast<std::size_t>(i)]);
    }
}

TEST(Coo, MirrorRejectsUpperEntries) {
    Coo m(2, 2);
    m.add(0, 1, 1.0);
    m.canonicalize();
    EXPECT_THROW(m.mirror_lower_to_full(), InternalError);
}

TEST(Coo, SpmvMatchesHandComputation) {
    const Coo m = small_symmetric();
    const std::vector<value_t> x = {1.0, 2.0, 3.0, 4.0};
    std::vector<value_t> y(4, -99.0);
    m.spmv(x, y);
    // Row 0: 2*1 + 1.5*2 = 5 ; row 1: 1.5*1 + 3*2 - 0.5*4 = 5.5
    // Row 2: 4*3 = 12 ; row 3: -0.5*2 + 5*4 = 19
    EXPECT_DOUBLE_EQ(y[0], 5.0);
    EXPECT_DOUBLE_EQ(y[1], 5.5);
    EXPECT_DOUBLE_EQ(y[2], 12.0);
    EXPECT_DOUBLE_EQ(y[3], 19.0);
}

TEST(Coo, SpmvChecksDimensions) {
    const Coo m = small_symmetric();
    std::vector<value_t> x(3), y(4);
    EXPECT_THROW(m.spmv(x, y), InternalError);
}

TEST(Coo, EmptyMatrixBehaves) {
    Coo m(0, 0);
    m.canonicalize();
    EXPECT_EQ(m.nnz(), 0);
    EXPECT_TRUE(m.is_canonical());
    std::vector<value_t> x, y;
    m.spmv(x, y);  // no-op, no crash
}

}  // namespace
}  // namespace symspmv
