// Randomized property sweep: seed-derived random matrices pushed through
// the whole format zoo and the reduction-index machinery.  Complements the
// structured tests with shapes nobody hand-picked.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>
#include <vector>

#include "engine/registry.hpp"
#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "spmv/reduction.hpp"

namespace symspmv {
namespace {

struct FuzzCase {
    Coo matrix;
    int threads;
    std::mt19937_64 rng;
};

/// Derives a random symmetric SPD matrix and thread count from @p seed.
FuzzCase make_case(std::uint64_t seed) {
    std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    const index_t n = static_cast<index_t>(64 + rng() % 700);
    const index_t band = static_cast<index_t>(1 + rng() % (static_cast<std::uint64_t>(n) / 2));
    const double nnz_per_row = 2.0 + static_cast<double>(rng() % 12);
    const double scatter = static_cast<double>(rng() % 100) / 100.0;
    Coo m = gen::make_spd(gen::banded_random(n, band, nnz_per_row, seed, scatter));
    return {std::move(m), static_cast<int>(1 + rng() % 8), std::move(rng)};
}

using symspmv::test::random_vector;

class RandomMatrices : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMatrices, EveryKernelMatchesTheOracle) {
    FuzzCase c = make_case(GetParam());
    ThreadPool pool(c.threads);
    const auto x = random_vector(c.matrix.rows(), c.rng);
    std::vector<value_t> y_ref(static_cast<std::size_t>(c.matrix.rows()));
    c.matrix.spmv(x, y_ref);
    for (KernelKind kind : all_kernel_kinds()) {
        if (kind == KernelKind::kCsxJit || kind == KernelKind::kCsxSymJit) {
            continue;  // covered in jit_test (each build invokes the compiler)
        }
        const KernelPtr kernel = make_kernel(kind, c.matrix, pool);
        std::vector<value_t> y(y_ref.size());
        kernel->spmv(x, y);
        for (std::size_t i = 0; i < y.size(); ++i) {
            ASSERT_NEAR(y_ref[i], y[i], 1e-9 * (1.0 + std::abs(y_ref[i])))
                << to_string(kind) << " seed=" << GetParam() << " row " << i;
        }
    }
}

TEST_P(RandomMatrices, ReductionIndexInvariantsUnderRandomPartitions) {
    FuzzCase c = make_case(GetParam());
    const Sss sss(c.matrix);
    // Random contiguous partition into p parts (not the usual nnz split).
    const int p = c.threads + 1;
    std::vector<index_t> cuts = {0, sss.rows()};
    for (int i = 0; i < p - 1; ++i) {
        cuts.push_back(static_cast<index_t>(c.rng() % static_cast<std::uint64_t>(sss.rows() + 1)));
    }
    std::ranges::sort(cuts);
    std::vector<RowRange> parts;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) parts.push_back({cuts[i], cuts[i + 1]});

    const ReductionIndex index(sss, parts);
    const auto entries = index.entries();

    // (1) Sorted by idx; (2) no duplicate (idx, vid) pairs.
    for (std::size_t k = 1; k < entries.size(); ++k) {
        ASSERT_LE(entries[k - 1].idx, entries[k].idx);
        ASSERT_FALSE(entries[k - 1] == entries[k]);
    }
    // (3) Chunks tile the entries and never split an idx value.
    const auto chunks = index.chunk_ptr();
    ASSERT_EQ(chunks.front(), 0u);
    ASSERT_EQ(chunks.back(), entries.size());
    for (std::size_t t = 1; t + 1 < chunks.size(); ++t) {
        const std::size_t cut = chunks[t];
        if (cut == 0 || cut == entries.size()) continue;
        ASSERT_NE(entries[cut - 1].idx, entries[cut].idx) << "chunk splits idx at " << cut;
    }
    // (4) Entries are exactly the brute-force conflict set.
    std::set<std::pair<index_t, std::int32_t>> expected;
    for (std::size_t t = 0; t < parts.size(); ++t) {
        for (index_t r = parts[t].begin; r < parts[t].end; ++r) {
            for (index_t j = sss.rowptr()[static_cast<std::size_t>(r)];
                 j < sss.rowptr()[static_cast<std::size_t>(r) + 1]; ++j) {
                const index_t col = sss.colind()[static_cast<std::size_t>(j)];
                if (col < parts[t].begin) {
                    expected.emplace(col, static_cast<std::int32_t>(t));
                }
            }
        }
    }
    ASSERT_EQ(entries.size(), expected.size());
    for (const ReductionEntry& e : entries) {
        EXPECT_TRUE(expected.contains({e.idx, e.vid}))
            << "unexpected entry (" << e.idx << ", " << e.vid << ")";
    }
    // (5) Density within [0, 1].
    EXPECT_GE(index.density(), 0.0);
    EXPECT_LE(index.density(), 1.0);
}

TEST_P(RandomMatrices, SpmvIsLinear) {
    // K(a*x1 + x2) == a*K(x1) + K(x2): catches state leaking between calls.
    FuzzCase c = make_case(GetParam());
    ThreadPool pool(c.threads);
    const KernelPtr kernel = make_kernel(KernelKind::kCsxSym, c.matrix, pool);
    const auto x1 = random_vector(c.matrix.rows(), c.rng);
    const auto x2 = random_vector(c.matrix.rows(), c.rng);
    const value_t a = 2.75;
    std::vector<value_t> combined(x1.size());
    for (std::size_t i = 0; i < x1.size(); ++i) combined[i] = a * x1[i] + x2[i];

    std::vector<value_t> y1(x1.size()), y2(x1.size()), yc(x1.size());
    kernel->spmv(x1, y1);
    kernel->spmv(x2, y2);
    kernel->spmv(combined, yc);
    for (std::size_t i = 0; i < yc.size(); ++i) {
        EXPECT_NEAR(yc[i], a * y1[i] + y2[i], 1e-8 * (1.0 + std::abs(yc[i])));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMatrices,
                         ::testing::Range<std::uint64_t>(0, 12),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

}  // namespace
}  // namespace symspmv
