// Statistical run-set comparison (obs/compare.hpp): bootstrap CI sanity,
// verdict logic on synthetic JSONL sets — identical sets must pass, an
// injected 10% median slowdown must fail and be named — plus the loader's
// strictness.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "obs/compare.hpp"
#include "obs/run_record.hpp"

namespace symspmv::obs {
namespace {

/// Records for one (matrix, kernel, threads) cell whose GFLOP/s samples are
/// base * (1 + jitter), jitter cycling through ±1% — realistic timing noise
/// without randomness.
std::vector<RunRecord> cell(const std::string& matrix, const std::string& kernel, int threads,
                            double base_gflops, int samples) {
    std::vector<RunRecord> records;
    for (int i = 0; i < samples; ++i) {
        RunRecord r;
        r.matrix = matrix;
        r.kernel = kernel;
        r.threads = threads;
        r.rows = 100;
        r.nnz = 500;
        const double jitter = 0.01 * static_cast<double>(i % 3 - 1);  // -1%, 0, +1%
        r.gflops = base_gflops * (1.0 + jitter);
        records.push_back(std::move(r));
    }
    return records;
}

std::vector<RunRecord> concat(std::vector<RunRecord> a, const std::vector<RunRecord>& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

// ---------------------------------------------------------------------------
// Bootstrap

TEST(Bootstrap, CiCoversTheMedianAndIsDeterministic) {
    const std::vector<double> sample = {1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98};
    double ci1[2], ci2[2];
    bootstrap_median_ci(sample, 2000, 0.95, 42, ci1);
    bootstrap_median_ci(sample, 2000, 0.95, 42, ci2);
    EXPECT_EQ(ci1[0], ci2[0]);  // same seed, same interval
    EXPECT_EQ(ci1[1], ci2[1]);
    EXPECT_LE(ci1[0], 1.0);  // the sample median is 1.0
    EXPECT_GE(ci1[1], 1.0);
    EXPECT_LE(ci1[0], ci1[1]);
}

TEST(Bootstrap, SingleSampleDegeneratesToPoint) {
    double ci[2];
    bootstrap_median_ci({2.5}, 2000, 0.95, 1, ci);
    EXPECT_EQ(ci[0], 2.5);
    EXPECT_EQ(ci[1], 2.5);
}

// ---------------------------------------------------------------------------
// Verdicts

TEST(Compare, IdenticalSetsPass) {
    const auto records = concat(cell("consph", "SSS-idx", 4, 10.0, 5),
                                cell("consph", "CSR", 4, 8.0, 5));
    const CompareReport report = compare_runs(records, records, {});
    EXPECT_TRUE(report.pass());
    EXPECT_EQ(report.regressions, 0);
    EXPECT_EQ(report.improvements, 0);
    ASSERT_EQ(report.cells.size(), 2u);
    for (const CellDiff& c : report.cells) {
        EXPECT_EQ(c.verdict, CellDiff::Verdict::kOk);
        EXPECT_EQ(c.relative_change, 0.0);
    }
}

TEST(Compare, TenPercentSlowdownRegresses) {
    const auto baseline = concat(cell("consph", "SSS-idx", 4, 10.0, 7),
                                 cell("consph", "CSR", 4, 8.0, 7));
    // SSS-idx loses 10%; CSR is unchanged.
    const auto current = concat(cell("consph", "SSS-idx", 4, 9.0, 7),
                                cell("consph", "CSR", 4, 8.0, 7));
    CompareOptions opts;
    opts.noise_floor = 0.05;
    const CompareReport report = compare_runs(baseline, current, opts);
    EXPECT_FALSE(report.pass());
    EXPECT_EQ(report.regressions, 1);
    bool found = false;
    for (const CellDiff& c : report.cells) {
        if (c.kernel == "SSS-idx") {
            found = true;
            EXPECT_EQ(c.verdict, CellDiff::Verdict::kRegressed);
            EXPECT_NEAR(c.relative_change, -0.10, 0.02);
        } else {
            EXPECT_EQ(c.verdict, CellDiff::Verdict::kOk);
        }
    }
    EXPECT_TRUE(found);
    // The report must name the regressed cell, not just count it.
    const std::string md = render_markdown(report, "baseline", "current");
    EXPECT_NE(md.find("**FAIL**"), std::string::npos);
    EXPECT_NE(md.find("consph × SSS-idx × p4"), std::string::npos) << md;
    EXPECT_NE(md.find("REGRESSED"), std::string::npos);
}

TEST(Compare, SpeedupIsImprovementNotRegression) {
    const auto baseline = cell("consph", "SSS-idx", 4, 10.0, 7);
    const auto current = cell("consph", "SSS-idx", 4, 12.0, 7);
    const CompareReport report = compare_runs(baseline, current, {});
    EXPECT_TRUE(report.pass());
    EXPECT_EQ(report.improvements, 1);
    EXPECT_EQ(report.cells.front().verdict, CellDiff::Verdict::kImproved);
}

TEST(Compare, MinSampleGuardNeverGates) {
    // A huge slowdown, but only 2 samples per side against the default
    // 3-sample guard: reported, never failing the gate.
    const auto baseline = cell("consph", "SSS-idx", 4, 10.0, 2);
    const auto current = cell("consph", "SSS-idx", 4, 5.0, 2);
    const CompareReport report = compare_runs(baseline, current, {});
    EXPECT_TRUE(report.pass());
    EXPECT_EQ(report.insufficient, 1);
    EXPECT_EQ(report.cells.front().verdict, CellDiff::Verdict::kInsufficient);
}

TEST(Compare, MinSamplesOfOneGatesOnTheNoiseFloor) {
    CompareOptions opts;
    opts.min_samples = 1;
    const auto baseline = cell("consph", "SSS-idx", 4, 10.0, 1);
    const CompareReport slow =
        compare_runs(baseline, cell("consph", "SSS-idx", 4, 8.0, 1), opts);
    EXPECT_FALSE(slow.pass());  // -20% beyond the 5% floor, point CIs disjoint
    const CompareReport same =
        compare_runs(baseline, cell("consph", "SSS-idx", 4, 9.8, 1), opts);
    EXPECT_TRUE(same.pass());  // -2% is inside the floor
}

TEST(Compare, NoiseInsideTheFloorPasses) {
    const auto baseline = cell("consph", "SSS-idx", 4, 10.0, 7);
    const auto current = cell("consph", "SSS-idx", 4, 9.9, 7);  // -1%
    const CompareReport report = compare_runs(baseline, current, {});
    EXPECT_TRUE(report.pass());
    EXPECT_EQ(report.cells.front().verdict, CellDiff::Verdict::kOk);
}

TEST(Compare, DisjointCellSetsAreReportedNotGated) {
    const auto baseline = cell("consph", "SSS-idx", 4, 10.0, 3);
    const auto current = cell("consph", "CSX-Sym", 4, 11.0, 3);
    const CompareReport report = compare_runs(baseline, current, {});
    EXPECT_TRUE(report.pass());
    ASSERT_EQ(report.cells.size(), 2u);
    // Cells are sorted by (matrix, kernel, threads): CSX-Sym < SSS-idx.
    EXPECT_EQ(report.cells[0].verdict, CellDiff::Verdict::kCurrentOnly);
    EXPECT_EQ(report.cells[1].verdict, CellDiff::Verdict::kBaselineOnly);
}

// ---------------------------------------------------------------------------
// Loader

TEST(Loader, RoundTripsJsonlAndSkipsBlankLines) {
    const std::string path = ::testing::TempDir() + "/compare_loader.jsonl";
    {
        std::ofstream out(path);
        for (const RunRecord& r : cell("consph", "CSR", 2, 5.0, 3)) {
            out << to_jsonl(r) << "\n\n";  // blank line after every record
        }
    }
    const auto loaded = load_run_records(path);
    EXPECT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded.front().matrix, "consph");
    std::remove(path.c_str());
}

TEST(Loader, MalformedLineFailsLoudlyWithPosition) {
    const std::string path = ::testing::TempDir() + "/compare_bad.jsonl";
    {
        std::ofstream out(path);
        out << to_jsonl(cell("consph", "CSR", 2, 5.0, 1).front()) << "\n";
        out << "{\"schema\": 1, \"truncated\n";
    }
    try {
        load_run_records(path);
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        // The error must point at the file and line.
        EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos) << e.what();
    }
    std::remove(path.c_str());
}

TEST(Loader, MissingFileThrows) {
    EXPECT_THROW(load_run_records("/nonexistent/b.jsonl"), InvalidArgument);
}

}  // namespace
}  // namespace symspmv::obs
