// Tests for the first-touch page placement helpers (§V.A substitution).
#include <gtest/gtest.h>

#include <vector>

#include "core/placement.hpp"

namespace symspmv {
namespace {

TEST(Placement, PartitionedTouchZeroesExactlyTheArray) {
    ThreadPool pool(4);
    std::vector<double> data(10'000, 7.0);
    const auto parts = split_even(static_cast<index_t>(data.size()), pool.size());
    first_touch_partitioned(std::span<double>(data), parts, pool);
    for (double v : data) ASSERT_EQ(v, 0.0);
}

TEST(Placement, PartitionedTouchRequiresMatchingPartitionCount) {
    ThreadPool pool(3);
    std::vector<double> data(100);
    const auto parts = split_even(100, 4);  // wrong count
    EXPECT_ANY_THROW(first_touch_partitioned(std::span<double>(data), parts, pool));
}

TEST(Placement, PartitionedTouchHandlesEmptyPartitions) {
    ThreadPool pool(8);
    std::vector<int> data(5, 3);  // fewer elements than workers
    const auto parts = split_even(5, 8);
    first_touch_partitioned(std::span<int>(data), parts, pool);
    for (int v : data) ASSERT_EQ(v, 0);
}

TEST(Placement, InterleavedTouchCoversWholeBufferIncludingTail) {
    ThreadPool pool(3);
    // Deliberately not a multiple of the page size.
    std::vector<unsigned char> data(3 * kPageBytes + 123, 0xAB);
    first_touch_interleaved(std::span<unsigned char>(data), pool);
    for (unsigned char v : data) ASSERT_EQ(v, 0);
}

TEST(Placement, InterleavedTouchOnTinyBuffer) {
    ThreadPool pool(4);
    std::vector<unsigned char> data(17, 0xCD);
    first_touch_interleaved(std::span<unsigned char>(data), pool);
    for (unsigned char v : data) ASSERT_EQ(v, 0);
}

}  // namespace
}  // namespace symspmv
