// Tests for the first-touch page placement helpers (§V.A substitution).
#include <gtest/gtest.h>

#include <vector>

#include "core/placement.hpp"

namespace symspmv {
namespace {

TEST(Placement, PartitionedTouchZeroesExactlyTheArray) {
    ThreadPool pool(4);
    std::vector<double> data(10'000, 7.0);
    const auto parts = split_even(static_cast<index_t>(data.size()), pool.size());
    first_touch_partitioned(std::span<double>(data), parts, pool);
    for (double v : data) ASSERT_EQ(v, 0.0);
}

TEST(Placement, PartitionedTouchRequiresMatchingPartitionCount) {
    ThreadPool pool(3);
    std::vector<double> data(100);
    const auto parts = split_even(100, 4);  // wrong count
    EXPECT_ANY_THROW(first_touch_partitioned(std::span<double>(data), parts, pool));
}

TEST(Placement, PartitionedTouchHandlesEmptyPartitions) {
    ThreadPool pool(8);
    std::vector<int> data(5, 3);  // fewer elements than workers
    const auto parts = split_even(5, 8);
    first_touch_partitioned(std::span<int>(data), parts, pool);
    for (int v : data) ASSERT_EQ(v, 0);
}

TEST(Placement, InterleavedTouchCoversWholeBufferIncludingTail) {
    ThreadPool pool(3);
    // Deliberately not a multiple of the page size.
    std::vector<unsigned char> data(3 * kPageBytes + 123, 0xAB);
    first_touch_interleaved(std::span<unsigned char>(data), pool);
    for (unsigned char v : data) ASSERT_EQ(v, 0);
}

TEST(Placement, InterleavedTouchOnTinyBuffer) {
    ThreadPool pool(4);
    std::vector<unsigned char> data(17, 0xCD);
    first_touch_interleaved(std::span<unsigned char>(data), pool);
    for (unsigned char v : data) ASSERT_EQ(v, 0);
}

TEST(Placement, RehomePartitionedPreservesContents) {
    ThreadPool pool(4);
    // Deliberately spans several pages and is not a multiple of kPageBytes,
    // so partition boundaries fall mid-page.
    const std::size_t n = 3 * kPageBytes / sizeof(double) + 57;
    aligned_vector<double> arr(n);
    for (std::size_t i = 0; i < n; ++i) arr[i] = static_cast<double>(i) * 0.5 - 100.0;
    const aligned_vector<double> expected = arr;
    const auto parts = split_even(static_cast<index_t>(n), pool.size());
    rehome_partitioned(arr, parts, pool);
    ASSERT_EQ(arr.size(), expected.size());
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(arr[i], expected[i]) << i;
}

TEST(Placement, RehomePartitionedHandlesZeroLengthPartitions) {
    ThreadPool pool(8);
    aligned_vector<int> arr = {1, 2, 3, 4, 5};  // fewer elements than workers
    const auto parts = split_even(5, 8);        // trailing partitions are empty
    rehome_partitioned(arr, parts, pool);
    EXPECT_EQ(arr, (aligned_vector<int>{1, 2, 3, 4, 5}));
}

TEST(Placement, RehomePartitionedEmptyArrayIsNoop) {
    ThreadPool pool(2);
    aligned_vector<double> arr;
    const std::vector<RowRange> parts = {{0, 0}, {0, 0}};
    rehome_partitioned(arr, parts, pool);
    EXPECT_TRUE(arr.empty());
}

TEST(Placement, RehomePartitionedRequiresMatchingPartitionCount) {
    ThreadPool pool(3);
    aligned_vector<double> arr(64, 1.0);
    const auto parts = split_even(64, 4);  // wrong count for a 3-worker pool
    EXPECT_ANY_THROW(rehome_partitioned(arr, parts, pool));
}

TEST(Placement, RehomeInterleavedPreservesContents) {
    ThreadPool pool(3);
    const std::size_t n = 2 * kPageBytes + 123;
    aligned_vector<unsigned char> arr(n);
    for (std::size_t i = 0; i < n; ++i) arr[i] = static_cast<unsigned char>(i * 31 + 7);
    const aligned_vector<unsigned char> expected = arr;
    rehome_interleaved(arr, pool);
    EXPECT_EQ(arr, expected);
}

TEST(Placement, NnzRangesFollowRowptr) {
    // rowptr of a 6-row matrix with 12 nnz.
    const std::vector<index_t> rowptr = {0, 2, 5, 5, 9, 10, 12};
    const std::vector<RowRange> parts = {{0, 2}, {2, 2}, {2, 6}};
    const auto nnzr = nnz_ranges(rowptr, parts);
    ASSERT_EQ(nnzr.size(), 3u);
    EXPECT_EQ(nnzr[0].begin, 0);
    EXPECT_EQ(nnzr[0].end, 5);
    EXPECT_EQ(nnzr[1].begin, 5);  // empty row range -> empty nnz range
    EXPECT_EQ(nnzr[1].end, 5);
    EXPECT_EQ(nnzr[2].begin, 5);
    EXPECT_EQ(nnzr[2].end, 12);
}

}  // namespace
}  // namespace symspmv
