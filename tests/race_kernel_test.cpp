// Tests for the reduction-free RACE-style symmetric kernel
// (src/spmv/race_kernels.hpp): schedule safety invariants, numerical
// agreement with the serial SSS kernel, the exactly-zero reduction phase,
// and region execution under run_many.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/profiling.hpp"
#include "core/thread_pool.hpp"
#include "engine/registry.hpp"
#include "matrix/generators.hpp"
#include "spmv/race_kernels.hpp"
#include "test_util.hpp"

namespace symspmv {
namespace {

/// Disconnected stress graph: path + star + isolated rows.
Coo disconnected_coo(index_t n) {
    std::vector<Triplet> t;
    for (index_t i = 0; i < n; ++i) t.push_back({i, i, 6.0});
    const index_t path_end = n / 2;
    for (index_t i = 1; i < path_end; ++i) {
        t.push_back({i, i - 1, -1.0});
        t.push_back({i - 1, i, -1.0});
    }
    const index_t hub = path_end;
    for (index_t i = hub + 1; i < n - 2; ++i) {
        t.push_back({i, hub, 0.5});
        t.push_back({hub, i, 0.5});
    }
    return Coo(n, n, std::move(t));
}

/// Arrowhead: the mirrored-write hot spot (every block conflicts via row 0).
Coo arrowhead_coo(index_t n) {
    std::vector<Triplet> t;
    for (index_t i = 0; i < n; ++i) t.push_back({i, i, static_cast<double>(n)});
    for (index_t i = 1; i < n; ++i) {
        t.push_back({i, 0, -1.0});
        t.push_back({0, i, -1.0});
    }
    return Coo(n, n, std::move(t));
}

void expect_matches_serial(const Coo& full, ThreadPool& pool) {
    const Sss sss(full);
    SssRaceKernel race(Sss(full), full, pool);
    const auto x = test::random_vector(full.rows(), 42);
    std::vector<value_t> y_race(static_cast<std::size_t>(full.rows()), -7.0);
    std::vector<value_t> y_ref(static_cast<std::size_t>(full.rows()), 3.0);
    race.spmv(x, y_race);
    sss.spmv(x, y_ref);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
        EXPECT_NEAR(y_race[i], y_ref[i], 1e-9 * (1.0 + std::abs(y_ref[i]))) << "row " << i;
    }
}

TEST(RaceSchedule, SameColorBlocksNeverShareWrites) {
    for (const Coo& a : {gen::make_spd(gen::banded_random(150, 18, 5.0, 13)),
                         disconnected_coo(61), arrowhead_coo(40)}) {
        const Sss sss(a);
        const RaceSchedule sched(sss, a, /*threads=*/4, /*blocks_per_thread=*/4);
        EXPECT_TRUE(sched.write_safe(sss));
        // Blocks partition all rows.
        std::size_t covered = 0;
        for (int b = 0; b < sched.blocks(); ++b) covered += sched.block_rows(b).size();
        EXPECT_EQ(covered, static_cast<std::size_t>(a.rows()));
        EXPECT_GE(sched.colors(), 1);
    }
}

TEST(RaceSchedule, EmptyMatrixYieldsEmptySchedule) {
    const Coo a(0, 0);
    const Sss sss(a);
    const RaceSchedule sched(sss, a, 4, 4);
    EXPECT_EQ(sched.blocks(), 0);
    EXPECT_EQ(sched.colors(), 0);
    EXPECT_TRUE(sched.write_safe(sss));
}

TEST(RaceSchedule, DiagonalOnlyNeedsOneColor) {
    std::vector<Triplet> t;
    for (index_t i = 0; i < 32; ++i) t.push_back({i, i, 1.0 + i});
    const Coo a(32, 32, std::move(t));
    const Sss sss(a);
    const RaceSchedule sched(sss, a, 4, 2);
    // Singleton write sets never conflict: everything runs in one stage.
    EXPECT_EQ(sched.colors(), 1);
    EXPECT_EQ(sched.max_parallelism(), sched.blocks());
}

TEST(SssRaceKernel, MatchesSerialSssOnBandedSpd) {
    ThreadPool pool(4);
    expect_matches_serial(gen::make_spd(gen::banded_random(173, 21, 5.0, 7)), pool);
}

TEST(SssRaceKernel, MatchesSerialSssOnLevelBoundaryStressCases) {
    ThreadPool pool(4);
    expect_matches_serial(disconnected_coo(57), pool);
    expect_matches_serial(arrowhead_coo(48), pool);
    // Pure path: width-1 levels, the level-scheduling degenerate case.
    std::vector<Triplet> t;
    for (index_t i = 0; i < 29; ++i) t.push_back({i, i, 3.0});
    for (index_t i = 1; i < 29; ++i) {
        t.push_back({i, i - 1, -1.5});
        t.push_back({i - 1, i, -1.5});
    }
    expect_matches_serial(Coo(29, 29, std::move(t)), pool);
}

TEST(SssRaceKernel, FewerRowsThanThreads) {
    ThreadPool pool(8);
    expect_matches_serial(gen::make_spd(gen::banded_random(5, 2, 4.0, 3)), pool);
}

TEST(SssRaceKernel, ReductionPhaseIsExactlyZero) {
    ThreadPool pool(3);
    const Coo a = gen::make_spd(gen::banded_random(90, 10, 5.0, 5));
    SssRaceKernel race(Sss(a), a, pool);
    PhaseProfiler profiler(3);
    race.set_profiler(&profiler);
    const auto x = test::random_vector(a.rows(), 11);
    std::vector<value_t> y(static_cast<std::size_t>(a.rows()));
    for (int op = 0; op < 4; ++op) race.spmv(x, y);
    const PhaseStats reduction = profiler.stats(Phase::kReduction);
    EXPECT_EQ(reduction.samples, 0u);
    EXPECT_EQ(reduction.total_seconds, 0.0);
    EXPECT_GT(profiler.stats(Phase::kMultiply).samples, 0u);
    EXPECT_GT(profiler.stats(Phase::kBarrier).samples, 0u);
    EXPECT_EQ(race.last_phases().reduction_seconds, 0.0);
    // One stage-seconds slot per color stage plus the D·x init stage.
    EXPECT_EQ(race.stage_seconds().size(),
              static_cast<std::size_t>(race.schedule().colors()) + 1);
}

TEST(SssRaceKernel, RegionExecutionUnderRunMany) {
    ThreadPool pool(4);
    const Coo a = gen::make_spd(gen::banded_random(110, 13, 5.0, 9));
    const Sss reference(a);
    SssRaceKernel race(Sss(a), a, pool);
    ASSERT_EQ(race.region_pool(), &pool);
    const auto x = test::random_vector(a.rows(), 23);
    std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 99.0);
    pool.run_many(5, [&](int tid, int /*iteration*/) {
        race.spmv_region(tid, x, y);
        pool.barrier();  // end-of-op barrier, per the kernel.hpp contract
    });
    std::vector<value_t> y_ref(static_cast<std::size_t>(a.rows()));
    reference.spmv(x, y_ref);
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
        EXPECT_NEAR(y[i], y_ref[i], 1e-9 * (1.0 + std::abs(y_ref[i])));
    }
}

TEST(SssRaceKernel, RegisteredInKernelRegistry) {
    EXPECT_EQ(parse_kernel_kind("SSS-race"), KernelKind::kSssRace);
    EXPECT_EQ(to_string(KernelKind::kSssRace), "SSS-race");
    const auto& all = all_kernel_kinds();
    EXPECT_NE(std::find(all.begin(), all.end(), KernelKind::kSssRace), all.end());
    ThreadPool pool(2);
    const Coo a = gen::make_spd(gen::banded_random(50, 6, 4.0, 3));
    const KernelPtr k = make_kernel(KernelKind::kSssRace, a, pool);
    EXPECT_EQ(k->name(), "SSS-race");
    EXPECT_EQ(k->nnz(), a.nnz());
    EXPECT_GT(k->footprint_bytes(), 0u);
}

}  // namespace
}  // namespace symspmv
