// Tests for the SPARSKIT-era baseline formats: ELLPACK, JDS and VBL.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <vector>

#include "core/thread_pool.hpp"
#include "matrix/csr.hpp"
#include "matrix/ellpack.hpp"
#include "matrix/generators.hpp"
#include "matrix/vbl.hpp"
#include "spmv/baseline_kernels.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

// --- ELLPACK ---------------------------------------------------------------

TEST(Ellpack, WidthIsLongestRow) {
    Coo coo(4, 4);
    coo.add(0, 0, 1.0);
    coo.add(1, 0, 1.0);
    coo.add(1, 1, 1.0);
    coo.add(1, 3, 1.0);
    coo.add(3, 3, 1.0);
    coo.canonicalize();
    const Ellpack ell(coo);
    EXPECT_EQ(ell.width(), 3);
    EXPECT_DOUBLE_EQ(ell.padding_ratio(), 12.0 / 5.0);
}

TEST(Ellpack, StencilHasLowPadding) {
    const Coo coo = gen::make_spd(gen::poisson2d(20, 20));
    const Ellpack ell(coo);
    EXPECT_EQ(ell.width(), 5);
    EXPECT_LT(ell.padding_ratio(), 1.2);
}

TEST(Ellpack, PowerLawHubExplodesPadding) {
    const Coo coo = gen::make_spd(gen::power_law_circuit(500, 3.0, 7));
    const Ellpack ell(coo);
    EXPECT_GT(ell.padding_ratio(), 2.0) << "hub rows must dominate the width";
}

TEST(Ellpack, SerialSpmvMatchesOracle) {
    const Coo coo = gen::make_spd(gen::banded_random(173, 15, 5.0, 5, 0.2));
    const Ellpack ell(coo);
    const auto x = random_vector(coo.rows(), 1);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(y.size());
    ell.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST(Ellpack, HandlesEmptyRowsAndEmptyMatrix) {
    Coo coo(5, 5);
    coo.add(2, 2, 3.0);
    coo.canonicalize();
    const Ellpack ell(coo);
    const auto x = random_vector(5, 2);
    std::vector<value_t> y(5);
    ell.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[2], 3.0 * x[2]);
    EXPECT_DOUBLE_EQ(y[0], 0.0);

    const Ellpack empty((Coo(3, 3)));
    EXPECT_EQ(empty.width(), 0);
    std::vector<value_t> y2(3, 7.0);
    empty.spmv(random_vector(3, 3), y2);
    for (value_t v : y2) EXPECT_EQ(v, 0.0);
}

// --- JDS --------------------------------------------------------------------

TEST(Jds, PermSortsRowsByLength) {
    Coo coo(4, 4);
    coo.add(0, 0, 1.0);
    coo.add(2, 0, 1.0);
    coo.add(2, 1, 1.0);
    coo.add(2, 2, 1.0);
    coo.add(3, 2, 1.0);
    coo.add(3, 3, 1.0);
    coo.canonicalize();
    const Jds jds(coo);
    EXPECT_EQ(jds.perm()[0], 2);  // 3 nnz
    EXPECT_EQ(jds.perm()[1], 3);  // 2 nnz
    EXPECT_EQ(jds.diagonals(), 3);
    EXPECT_EQ(jds.nnz(), 6);
}

TEST(Jds, NoPaddingEverStored) {
    const Coo coo = gen::make_spd(gen::power_law_circuit(400, 3.0, 11));
    const Jds jds(coo);
    EXPECT_EQ(jds.nnz(), coo.nnz());
}

TEST(Jds, SerialSpmvMatchesOracle) {
    const Coo coo = gen::make_spd(gen::banded_random(211, 18, 6.0, 9, 0.3));
    const Jds jds(coo);
    const auto x = random_vector(coo.rows(), 4);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(y.size());
    jds.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

// --- VBL --------------------------------------------------------------------

TEST(Vbl, CollapsesConsecutiveRuns) {
    Coo coo(3, 10);
    for (index_t c = 2; c < 7; ++c) coo.add(0, c, 1.0);  // run of 5
    coo.add(1, 0, 1.0);
    coo.add(1, 5, 1.0);  // two singleton blocks
    coo.canonicalize();
    const Vbl vbl(coo);
    EXPECT_EQ(vbl.blocks(), 3);
    EXPECT_EQ(vbl.nnz(), 7);
    EXPECT_EQ(vbl.blen()[0], 5);
    EXPECT_EQ(vbl.bcol()[0], 2);
}

TEST(Vbl, SplitsRunsAtMaxBlockLength) {
    Coo coo(1, 600);
    for (index_t c = 0; c < 600; ++c) coo.add(0, c, 1.0);
    coo.canonicalize();
    const Vbl vbl(coo);
    EXPECT_EQ(vbl.blocks(), 3);  // 255 + 255 + 90
    EXPECT_EQ(vbl.nnz(), 600);
    EXPECT_EQ(vbl.blen()[0], 255);
    EXPECT_EQ(vbl.blen()[2], 90);
}

TEST(Vbl, DenseRowsBeatCsrFootprint) {
    // block_fem produces long horizontal runs -> VBL < CSR bytes.
    const Coo coo = gen::make_spd(gen::block_fem(100, 4, 5.0, 0.8, 13));
    const Vbl vbl(coo);
    EXPECT_GT(vbl.mean_block_length(), 1.5);
    EXPECT_LT(vbl.size_bytes(), Csr(coo).size_bytes());
}

TEST(Vbl, SerialSpmvMatchesOracle) {
    const Coo coo = gen::make_spd(gen::block_fem(60, 3, 5.0, 0.6, 17));
    const Vbl vbl(coo);
    const auto x = random_vector(coo.rows(), 5);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(y.size());
    vbl.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

// --- MT kernels --------------------------------------------------------------

class BaselineKernelThreads : public ::testing::TestWithParam<int> {};

TEST_P(BaselineKernelThreads, AllThreeMatchOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::banded_random(321, 22, 6.0, 19, 0.25));
    const auto x = random_vector(coo.rows(), 6);
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    coo.spmv(x, y_ref);

    EllpackMtKernel ell(Ellpack(coo), pool);
    JdsMtKernel jds(Jds(coo), pool);
    VblMtKernel vbl(Vbl(coo), pool);
    for (SpmvKernel* kernel : {static_cast<SpmvKernel*>(&ell), static_cast<SpmvKernel*>(&jds),
                               static_cast<SpmvKernel*>(&vbl)}) {
        std::vector<value_t> y(y_ref.size());
        kernel->spmv(x, y);
        expect_near_vectors(y_ref, y);
        EXPECT_EQ(kernel->nnz(), coo.nnz());
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, BaselineKernelThreads, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace symspmv
