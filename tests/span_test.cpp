// The request-tracing primitives: spans and ambient context propagation,
// the flight-recorder ring (wraparound, sharding, trace extraction), the
// Chrome trace_event export, the slow-capture JSONL sidecar and the
// structured log line format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"

namespace symspmv::obs {
namespace {

TEST(Span, IdsAreUniqueAndNeverZero) {
    const std::uint64_t a = next_span_id();
    const std::uint64_t b = next_span_id();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
    EXPECT_NE(make_trace_id(), 0u);
    EXPECT_NE(make_trace_id(), make_trace_id());
}

TEST(Span, TraceIdFormatRoundTrips) {
    const std::uint64_t id = 0x0123456789abcdefULL;
    EXPECT_EQ(format_trace_id(id), "0x0123456789abcdef");
    EXPECT_EQ(parse_trace_id(format_trace_id(id)), id);
    EXPECT_EQ(parse_trace_id("0123456789abcdef"), id);  // 0x optional
    EXPECT_EQ(parse_trace_id("not hex"), 0u);
    EXPECT_EQ(parse_trace_id(""), 0u);
}

TEST(Span, AmbientNestingParentsChildren) {
    FlightRecorder rec(64);
    std::uint64_t outer_id = 0;
    std::uint64_t trace = 0;
    {
        ScopedSpan outer(&rec, "outer");
        outer_id = outer.context().span_id;
        trace = outer.trace_id();
        EXPECT_NE(trace, 0u);
        ScopedSpan inner(&rec, "inner");
        EXPECT_EQ(inner.trace_id(), trace);
    }
    // Scope exit restores a clean ambient context.
    EXPECT_FALSE(current_span_context().valid());

    const auto spans = rec.trace(trace);
    ASSERT_EQ(spans.size(), 2u);
    // snapshot order is by start time: outer started first.
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].parent_id, 0u);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].parent_id, outer_id);
    EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
    EXPECT_LE(spans[1].end_ns, spans[0].end_ns);
}

TEST(Span, CrossThreadHandoffViaContextScope) {
    FlightRecorder rec(64);
    ScopedSpan root(&rec, "root");
    const SpanContext parent = root.context();

    std::thread worker([&] {
        EXPECT_FALSE(current_span_context().valid());  // fresh thread
        SpanContextScope scope(parent);
        ScopedSpan child(&rec, "on-worker");
        EXPECT_EQ(child.trace_id(), parent.trace_id);
    });
    worker.join();
    root.end();

    const auto spans = rec.trace(parent.trace_id);
    ASSERT_EQ(spans.size(), 2u);
    for (const auto& s : spans) {
        if (s.name == "on-worker") EXPECT_EQ(s.parent_id, parent.span_id);
    }
}

TEST(Span, ExplicitParentConstructorOverridesAmbient) {
    FlightRecorder rec(64);
    const SpanContext foreign{make_trace_id(), next_span_id()};
    ScopedSpan ambient(&rec, "ambient-root");
    ScopedSpan child(&rec, "adopted", foreign);
    EXPECT_EQ(child.trace_id(), foreign.trace_id);
    child.end();
    const auto spans = rec.trace(foreign.trace_id);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].parent_id, foreign.span_id);
}

TEST(Span, NullRecorderIsANoOpShell) {
    ScopedSpan span(nullptr, "nowhere");
    span.annotate("k", "v");
    span.end();  // must not crash
    EXPECT_NE(span.trace_id(), 0u);
}

TEST(Flight, RingWrapsAndCountsDrops) {
    // Capacity rounds up to a multiple of the shard count; a single thread
    // lands in exactly one shard, so its per-shard ring (capacity/16 slots)
    // is what wraps.
    FlightRecorder rec(16);  // one slot per shard
    const std::uint64_t trace = make_trace_id();
    for (int i = 0; i < 5; ++i) {
        Span s;
        s.trace_id = trace;
        s.span_id = next_span_id();
        s.name = "span-" + std::to_string(i);
        s.start_ns = static_cast<std::uint64_t>(i);
        s.end_ns = static_cast<std::uint64_t>(i) + 1;
        rec.record(std::move(s));
    }
    EXPECT_EQ(rec.recorded_total(), 5u);
    EXPECT_EQ(rec.dropped_total(), 4u);
    const auto spans = rec.snapshot();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "span-4");  // newest survives wraparound
}

TEST(Flight, TraceFiltersToOneRequest) {
    FlightRecorder rec(64);
    const std::uint64_t t1 = make_trace_id();
    const std::uint64_t t2 = make_trace_id();
    for (int i = 0; i < 3; ++i) {
        Span s;
        s.trace_id = i == 1 ? t2 : t1;
        s.span_id = next_span_id();
        s.name = "s";
        rec.record(std::move(s));
    }
    EXPECT_EQ(rec.trace(t1).size(), 2u);
    EXPECT_EQ(rec.trace(t2).size(), 1u);
    EXPECT_TRUE(rec.trace(0xdeadULL).empty());
}

TEST(Flight, ChromeJsonIsWellFormed) {
    FlightRecorder rec(64);
    {
        ScopedSpan root(&rec, "request");
        root.annotate("type", "spmv");
        ScopedSpan child(&rec, "solve");
        (void)child;
    }
    const std::string doc = rec.chrome_json();
    const Json parsed = Json::parse(doc);
    // Alongside the two duration events the document carries metadata
    // events (process/thread names); count and check only the "X" ones.
    std::size_t durations = 0;
    for (const auto& ev : parsed.at("traceEvents").as_array()) {
        if (ev.at("ph").as_string() != "X") continue;
        ++durations;
        EXPECT_GE(ev.at("dur").as_double(), 0.0);
        const Json& args = ev.at("args");
        EXPECT_TRUE(args.get("trace_id") != nullptr);
        EXPECT_EQ(args.at("trace_id").as_string().substr(0, 2), "0x");
        EXPECT_TRUE(args.get("span_id") != nullptr);
    }
    EXPECT_EQ(durations, 2u);
}

TEST(Flight, PhaseSinkBridgesAndCaps) {
    FlightRecorder rec(256);
    const SpanContext parent{make_trace_id(), next_span_id()};
    FlightPhaseSink sink(&rec, parent, /*max_spans=*/3);
    for (int i = 0; i < 5; ++i) sink.phase_recorded(i % 2, Phase::kMultiply, 1e-4);
    EXPECT_EQ(sink.recorded(), 3u);
    EXPECT_EQ(sink.suppressed(), 2u);
    const auto spans = rec.trace(parent.trace_id);
    ASSERT_EQ(spans.size(), 3u);
    for (const auto& s : spans) {
        EXPECT_EQ(s.parent_id, parent.span_id);
        EXPECT_EQ(s.name, "multiply");
        EXPECT_GE(s.tid, 0);
    }
}

TEST(Flight, SlowLogAppendsParseableRecords) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "symspmv_slow_test.jsonl").string();
    std::filesystem::remove(path);
    {
        SlowLog log(path);
        std::vector<Span> spans(2);
        spans[0].trace_id = 0xabcULL;
        spans[0].span_id = 7;
        spans[0].name = "request";
        spans[0].start_ns = 100;
        spans[0].end_ns = 400;
        spans[1].trace_id = 0xabcULL;
        spans[1].span_id = 9;
        spans[1].parent_id = 7;
        spans[1].name = "solve";
        spans[1].annotations.emplace_back("kernel", "sss-race");
        EXPECT_TRUE(log.capture(0xabcULL, 0.25, 0.1, "absolute", spans));
        EXPECT_EQ(log.captured(), 1u);
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const Json rec = Json::parse(line);
    EXPECT_EQ(rec.at("schema").as_int(), 1);
    EXPECT_EQ(rec.at("trace_id").as_string(), format_trace_id(0xabcULL));
    EXPECT_DOUBLE_EQ(rec.at("seconds").as_double(), 0.25);
    EXPECT_EQ(rec.at("trigger").as_string(), "absolute");
    const auto& spans_json = rec.at("spans").as_array();
    ASSERT_EQ(spans_json.size(), 2u);
    EXPECT_EQ(spans_json[1].at("parent_id").as_int(), 7);
    EXPECT_EQ(spans_json[1].at("annotations").at("kernel").as_string(), "sss-race");
    EXPECT_FALSE(std::getline(in, line));  // exactly one record
    std::filesystem::remove(path);
}

class LogCapture {
   public:
    LogCapture() { set_log_stream(&out_); }
    ~LogCapture() {
        set_log_stream(nullptr);
        set_log_level(LogLevel::kInfo);
    }
    [[nodiscard]] std::string text() const { return out_.str(); }

   private:
    std::ostringstream out_;
};

TEST(Log, LineShapeAndQuoting) {
    LogCapture cap;
    set_log_level(LogLevel::kInfo);
    log_info("hello world", {{"plain", "v1"}, {"quoted", "two words"}});
    const std::string line = cap.text();
    // ISO UTC timestamp, level, message (quoted when multi-word, like any
    // field value), then the fields.
    EXPECT_NE(line.find("Z info \"hello world\" plain=v1 quoted=\"two words\""),
              std::string::npos)
        << line;
    EXPECT_EQ(line.find('\n'), line.size() - 1);  // single line
}

TEST(Log, LevelThresholdFilters) {
    LogCapture cap;
    set_log_level(LogLevel::kWarn);
    EXPECT_FALSE(log_enabled(LogLevel::kInfo));
    EXPECT_TRUE(log_enabled(LogLevel::kError));
    log_info("dropped");
    log_warn("kept");
    const std::string text = cap.text();
    EXPECT_EQ(text.find("dropped"), std::string::npos);
    EXPECT_NE(text.find("kept"), std::string::npos);
}

TEST(Log, AmbientTraceIdIsAppended) {
    LogCapture cap;
    set_log_level(LogLevel::kInfo);
    FlightRecorder rec(64);
    ScopedSpan span(&rec, "ctx");
    log_info("inside request");
    const std::string line = cap.text();
    EXPECT_NE(line.find("trace=" + format_trace_id(span.trace_id())), std::string::npos)
        << line;
}

}  // namespace
}  // namespace symspmv::obs
