// Tests for the format advisor (§V.B/§V.D selection rules).
#include <gtest/gtest.h>

#include "bench/advisor.hpp"
#include "matrix/generators.hpp"
#include "matrix/suite.hpp"

namespace symspmv::bench {
namespace {

TEST(FeatureExtraction, DetectsSymmetryAndBandwidth) {
    const FormatFeatures banded = extract_features(gen::make_spd(gen::poisson2d(20, 20)));
    EXPECT_TRUE(banded.symmetric);
    EXPECT_LT(banded.relative_bandwidth, 0.1);

    const FormatFeatures scattered =
        extract_features(gen::make_spd(gen::banded_random(300, 140, 5.0, 3, 1.0)));
    EXPECT_TRUE(scattered.symmetric);
    EXPECT_GT(scattered.relative_bandwidth, 0.1);
}

TEST(FeatureExtraction, BlockFemHasHighPatternCoverage) {
    const FormatFeatures f =
        extract_features(gen::make_spd(gen::block_fem(80, 3, 5.0, 0.7, 5)));
    EXPECT_GT(f.pattern_coverage, 0.5);
}

TEST(FeatureExtraction, PowerLawHasHighRowSkew) {
    const FormatFeatures f =
        extract_features(gen::make_spd(gen::power_law_circuit(400, 3.0, 7)));
    EXPECT_GT(f.row_skew, 3.0);
}

TEST(Advise, BlockStructuredSymmetricGetsCsxSym) {
    // Narrow band (band_fraction 0.05) + dense 3x3 blocks: the Fig. 11
    // sweet spot.  A wide band would correctly hit the corner-case rule.
    const Advice a = advise(gen::make_spd(gen::block_fem(80, 3, 5.0, 0.05, 9)));
    EXPECT_EQ(a.kernel, KernelKind::kCsxSym) << a.rationale;
    EXPECT_FALSE(a.rationale.empty());
}

TEST(Advise, HighBandwidthSymmetricStaysOnCsr) {
    const Advice a = advise(gen::make_spd(gen::banded_random(300, 140, 5.0, 11, 1.0)));
    EXPECT_EQ(a.kernel, KernelKind::kCsr);
    EXPECT_NE(a.rationale.find("RCM"), std::string::npos);
}

TEST(Advise, UnsymmetricMatrixNeverGetsASymmetricFormat) {
    Coo coo(50, 50);
    for (index_t i = 0; i < 50; ++i) coo.add(i, i, 5.0);
    coo.add(3, 7, 1.0);  // no mirror
    coo.canonicalize();
    const Advice a = advise(coo);
    EXPECT_TRUE(a.kernel == KernelKind::kCsr || a.kernel == KernelKind::kBcsr);
}

TEST(Advise, SparseStencilGetsSssOrCsxSym) {
    const Advice a = advise(gen::make_spd(gen::poisson2d(24, 24)));
    EXPECT_TRUE(a.kernel == KernelKind::kSssIndexing || a.kernel == KernelKind::kCsxSym)
        << to_string(a.kernel);
}

TEST(Advise, SuiteCornerCasesMatchThePaper) {
    // The paper's four §V.B corner cases vs four regular matrices.
    for (const char* name : {"offshore", "G3_circuit"}) {
        const Advice a = advise(gen::generate_suite_matrix(name, 0.004));
        EXPECT_EQ(a.kernel, KernelKind::kCsr) << name << ": " << a.rationale;
    }
    for (const char* name : {"bmwcra_1", "ldoor", "inline_1", "hood"}) {
        const Advice a = advise(gen::generate_suite_matrix(name, 0.004));
        EXPECT_TRUE(a.kernel == KernelKind::kCsxSym || a.kernel == KernelKind::kSssIndexing)
            << name << ": " << a.rationale;
    }
}

}  // namespace
}  // namespace symspmv::bench
