// Observability layer: JSON round-trips, counter-unavailable fallback,
// RunRecord serialization, trace well-formedness.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "engine/bundle.hpp"
#include "engine/context.hpp"
#include "engine/factory.hpp"
#include "engine/registry.hpp"
#include "matrix/generators.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/run_record.hpp"
#include "obs/trace.hpp"
#include "core/error.hpp"

namespace symspmv::obs {
namespace {

// ---------------------------------------------------------------------------
// Json

TEST(Json, ScalarRoundTrip) {
    EXPECT_EQ(Json::parse("null"), Json());
    EXPECT_EQ(Json::parse("true").as_bool(), true);
    EXPECT_EQ(Json::parse("-42").as_int(), -42);
    EXPECT_DOUBLE_EQ(Json::parse("2.5e-3").as_double(), 2.5e-3);
    EXPECT_EQ(Json::parse("\"a\\nb\\\"c\\u00e9\"").as_string(), "a\nb\"cé");
}

TEST(Json, IntegersStayExact) {
    const std::int64_t big = 9007199254740993;  // not representable as double
    Json j = Json::object();
    j.set("v", big);
    EXPECT_EQ(Json::parse(j.dump()).at("v").as_int(), big);
}

TEST(Json, NestedDumpParseIsStable) {
    Json j = Json::object();
    j.set("name", "SSS-idx");
    j.set("list", JsonArray{Json(1), Json(2.5), Json(nullptr)});
    Json inner = Json::object();
    inner.set("flag", true);
    j.set("inner", std::move(inner));
    const std::string once = j.dump();
    EXPECT_EQ(Json::parse(once).dump(), once);
    EXPECT_EQ(Json::parse(once), j);
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW(Json::parse(""), ParseError);
    EXPECT_THROW(Json::parse("{"), ParseError);
    EXPECT_THROW(Json::parse("{\"a\":1,}"), ParseError);
    EXPECT_THROW(Json::parse("[1 2]"), ParseError);
    EXPECT_THROW(Json::parse("nul"), ParseError);
    EXPECT_THROW(Json::parse("1 trailing"), ParseError);
    EXPECT_THROW(Json::parse("\"unterminated"), ParseError);
}

TEST(Json, NonFiniteDumpsAsNull) {
    Json j = Json::object();
    j.set("v", std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(j.dump(), "{\"v\":null}");
}

// ---------------------------------------------------------------------------
// Counters

/// Forces the perf-unavailable path for the duration of one test.
class NoPerfGuard {
   public:
    NoPerfGuard() { ::setenv("SYMSPMV_NO_PERF", "1", 1); }
    ~NoPerfGuard() { ::unsetenv("SYMSPMV_NO_PERF"); }
};

TEST(Counters, UnavailableFallbackIsTotal) {
    const NoPerfGuard guard;
    CounterGroup group;
    EXPECT_FALSE(group.open_on_this_thread());
    EXPECT_FALSE(group.available());
    EXPECT_EQ(group.unavailable_reason(), "disabled by SYMSPMV_NO_PERF");
    group.enable();   // must be no-ops, not crashes
    group.disable();
    const CounterSample s = group.read();
    EXPECT_FALSE(s.any_valid());
    for (int i = 0; i < kCounterCount; ++i) {
        EXPECT_FALSE(s.get(static_cast<Counter>(i)).has_value());
    }
}

TEST(Counters, ThreadCountersUnavailableAggregatesToNull) {
    const NoPerfGuard guard;
    ThreadPool pool(2);
    ThreadCounters counters(pool, /*include_caller=*/true);
    EXPECT_FALSE(counters.available());
    EXPECT_EQ(counters.unavailable_reason(), "disabled by SYMSPMV_NO_PERF");
    counters.enable();
    counters.disable();
    EXPECT_FALSE(counters.aggregate().any_valid());
}

TEST(Counters, OpportunisticRealCounters) {
    // Whatever the environment permits, the API must hold its contract:
    // open never throws, reads are either valid data or null, aggregation
    // only sums slots valid on every thread.
    engine::ExecutionContext ctx(2);
    ThreadCounters counters(ctx, /*include_caller=*/true);
    counters.enable();
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    counters.disable();
    const CounterSample s = counters.aggregate();
    for (int i = 0; i < kCounterCount; ++i) {
        const auto v = s.get(static_cast<Counter>(i));
        if (v.has_value()) EXPECT_GE(*v, 0);
    }
}

/// Caps how many events open_on_this_thread() attempts, injecting the
/// partial-open path deterministically (see CounterGroup::max_events()).
class PerfCapGuard {
   public:
    explicit PerfCapGuard(const char* cap) { ::setenv("SYMSPMV_PERF_MAX_EVENTS", cap, 1); }
    ~PerfCapGuard() { ::unsetenv("SYMSPMV_PERF_MAX_EVENTS"); }
};

TEST(Counters, MaxEventsParsesEnvDefensively) {
    EXPECT_EQ(CounterGroup::max_events(), kCounterCount);  // unset: no cap
    {
        const PerfCapGuard cap("2");
        EXPECT_EQ(CounterGroup::max_events(), 2);
    }
    {
        const PerfCapGuard cap("0");
        EXPECT_EQ(CounterGroup::max_events(), 0);
    }
    {
        const PerfCapGuard cap("99");  // above the slot count: clamp
        EXPECT_EQ(CounterGroup::max_events(), kCounterCount);
    }
    {
        const PerfCapGuard cap("two");  // garbage: ignore the cap
        EXPECT_EQ(CounterGroup::max_events(), kCounterCount);
    }
}

#if defined(__linux__)

/// Descriptors this process currently holds, reconciled via /proc/self/fd.
int count_open_fds() {
    int n = 0;
    for ([[maybe_unused]] const auto& entry :
         std::filesystem::directory_iterator("/proc/self/fd")) {
        ++n;
    }
    return n;
}

TEST(Counters, PartialOpenNeverLeaksDescriptors) {
    // Regression test for the partial-open path: some events open, the rest
    // fail (injected via the SYMSPMV_PERF_MAX_EVENTS cap).  Every fd the
    // group acquired must be reclaimed across reopen, move, and destruction
    // — reconciled against the process-wide descriptor table.
    const int before = count_open_fds();
    {
        const PerfCapGuard cap("2");
        CounterGroup group;
        group.open_on_this_thread();
        EXPECT_LE(group.open_fds(), 2);  // cap honoured (0 if perf is denied)
        group.open_on_this_thread();     // reopen closes the first set
        EXPECT_LE(group.open_fds(), 2);

        CounterGroup moved(std::move(group));
        EXPECT_EQ(group.open_fds(), 0);  // NOLINT: moved-from is fd-empty

        CounterGroup target;
        target.open_on_this_thread();    // target owns fds, then is assigned over
        target = std::move(moved);
        EXPECT_LE(target.open_fds(), 2);
    }
    EXPECT_EQ(count_open_fds(), before);
}

#endif  // __linux__

TEST(Counters, SampleSumInvalidatesPartialSlots) {
    CounterSample a, b;
    a.value[0] = 100;
    a.valid[0] = true;
    a.value[1] = 7;
    a.valid[1] = true;
    b.value[0] = 23;
    b.valid[0] = true;  // slot 1 invalid on b
    a += b;
    EXPECT_EQ(a.get(Counter::kCycles), 123);
    EXPECT_FALSE(a.get(Counter::kInstructions).has_value());
    EXPECT_EQ(a.value[1], 0);  // invalid slots must not carry stale values
}

// ---------------------------------------------------------------------------
// RunRecord

RunRecord sample_record() {
    RunRecord rec;
    rec.matrix = "consph";
    rec.fingerprint = "100x100x500-abc-def";
    rec.rows = 100;
    rec.nnz = 500;
    rec.kernel = "SSS-idx";
    rec.threads = 4;
    rec.partition = "by-nnz";
    rec.placement = "partitioned";
    rec.pinning = "compact";
    rec.topology = "2s/2n/8c/2t";
    rec.oversubscribed = true;
    rec.counters_note = "perf_event_open('cycles') failed: Permission denied";
    rec.iterations = 24;
    rec.seconds_per_op = 1.25e-4;
    rec.seconds_mean = 1.3e-4;
    rec.seconds_min = 1.2e-4;
    rec.seconds_max = 1.6e-4;
    rec.multiply_seconds = 9e-5;
    rec.barrier_seconds = 1e-5;
    rec.reduction_seconds = 2e-5;
    rec.multiply_imbalance = 0.07;
    rec.footprint_bytes = 123456;
    rec.bytes_per_op = 125056;
    rec.gflops = 8.0;
    rec.bandwidth_gbs = 1.0;
    rec.counters.value[0] = 1000000;
    rec.counters.valid[0] = true;
    rec.counters.value[3] = 42;
    rec.counters.valid[3] = true;  // slots 1, 2, 4 stay null
    return rec;
}

TEST(RunRecord, JsonRoundTripFieldEquality) {
    const RunRecord rec = sample_record();
    const RunRecord back = parse_run_record(to_jsonl(rec));
    EXPECT_EQ(back, rec);
}

TEST(RunRecord, InvalidCountersSerializeAsNull) {
    const Json j = to_json(sample_record());
    const Json& counters = j.at("counters");
    EXPECT_EQ(counters.at("cycles").as_int(), 1000000);
    EXPECT_TRUE(counters.at("instructions").is_null());
    EXPECT_TRUE(counters.at("llc_loads").is_null());
    EXPECT_EQ(counters.at("llc_misses").as_int(), 42);
    EXPECT_TRUE(counters.at("stalled_cycles").is_null());
}

TEST(RunRecord, RejectsWrongSchemaAndMissingFields) {
    Json j = to_json(sample_record());
    std::string text = j.dump();
    EXPECT_THROW(parse_run_record("{}"), ParseError);
    const std::string bumped =
        text.replace(text.find("\"schema\":3"), 10, "\"schema\":9");
    EXPECT_THROW(parse_run_record(bumped), ParseError);
}

TEST(RunRecord, Schema1RecordsStillParseWithExecDefaulted) {
    // Committed baselines (BENCH_baseline.jsonl) predate the exec block;
    // they must keep loading, with the schema-2 fields defaulted empty.
    Json j = to_json(sample_record());
    std::string text = j.dump();
    text.replace(text.find("\"schema\":3"), 10, "\"schema\":1");
    // Strip the exec block a schema-1 writer would never have emitted.
    const auto begin = text.find("\"exec\":{");
    ASSERT_NE(begin, std::string::npos);
    const auto end = text.find('}', begin);
    ASSERT_NE(end, std::string::npos);
    text.erase(begin, end - begin + 2);  // block plus trailing "},"
    const RunRecord rec = parse_run_record(text);
    EXPECT_EQ(rec.schema, 1);
    EXPECT_EQ(rec.matrix, "consph");
    EXPECT_TRUE(rec.placement.empty());
    EXPECT_TRUE(rec.pinning.empty());
    EXPECT_TRUE(rec.topology.empty());
    // Schema-3 fields default too (the serialized counters_note key is
    // simply ignored for pre-3 records).
    EXPECT_FALSE(rec.oversubscribed);
    EXPECT_TRUE(rec.counters_note.empty());
}

TEST(RunRecord, Schema2RecordsParseWithSchema3FieldsDefaulted) {
    // A schema-2 writer emitted the exec block but neither oversubscribed
    // nor counters_note; parsing must not require them.
    Json j = to_json(sample_record());
    std::string text = j.dump();
    text.replace(text.find("\"schema\":3"), 10, "\"schema\":2");
    auto erase_key = [&text](const std::string& fragment) {
        const auto pos = text.find(fragment);
        ASSERT_NE(pos, std::string::npos);
        text.erase(pos, fragment.size());
    };
    erase_key(",\"oversubscribed\":true");
    erase_key(",\"counters_note\":\"perf_event_open('cycles') failed: Permission denied\"");
    const RunRecord rec = parse_run_record(text);
    EXPECT_EQ(rec.schema, 2);
    EXPECT_EQ(rec.pinning, "compact");
    EXPECT_FALSE(rec.oversubscribed);
    EXPECT_TRUE(rec.counters_note.empty());
}

TEST(RunRecord, ExecConfigDescribesTheContext) {
    const engine::ExecutionContext ctx(engine::ContextOptions{
        .threads = 2, .pin_threads = true, .placement = engine::PlacementPolicy::kPartitioned});
    const ExecConfig exec = exec_config(ctx);
    EXPECT_EQ(exec.placement, "partitioned");
    EXPECT_EQ(exec.pinning, "compact");
    EXPECT_EQ(exec.topology, ctx.topology().summary());
    EXPECT_FALSE(exec.topology.empty());
    EXPECT_EQ(exec.logical_cpus, ctx.topology().logical_cpus());
    EXPECT_GT(exec.logical_cpus, 0);
}

TEST(RunRecord, MakeFromMeasurementFillsDerivedFields) {
    const NoPerfGuard guard;  // deterministic: counters null everywhere
    const engine::MatrixBundle bundle(gen::make_spd(gen::poisson2d(24, 24)));
    engine::ExecutionContext ctx(2);
    const engine::KernelFactory factory(bundle, ctx);
    const KernelPtr kernel = factory.make(KernelKind::kSssIndexing);

    PhaseProfiler profiler(2);
    bench::MeasureOptions mopts;
    mopts.iterations = 3;
    mopts.warmup = 1;
    mopts.profiler = &profiler;
    obs::ThreadCounters counters(ctx);
    counters.enable();
    const bench::Measurement m = bench::measure(*kernel, mopts);
    counters.disable();
    const CounterSample sample = counters.aggregate();

    const RunRecord rec = make_run_record("poisson", bundle, *kernel, m, 3, 2, "by-nnz",
                                          &profiler, &sample);
    EXPECT_EQ(rec.matrix, "poisson");
    EXPECT_EQ(rec.kernel, kernel->name());
    EXPECT_EQ(rec.rows, kernel->rows());
    EXPECT_EQ(rec.nnz, kernel->nnz());
    EXPECT_FALSE(rec.fingerprint.empty());
    EXPECT_GT(rec.seconds_per_op, 0.0);
    EXPECT_GT(rec.gflops, 0.0);
    EXPECT_GT(rec.bandwidth_gbs, 0.0);
    EXPECT_GT(rec.multiply_seconds, 0.0);
    EXPECT_GT(rec.bytes_per_op, rec.footprint_bytes);
    EXPECT_FALSE(rec.counters.any_valid());
    // Default ExecConfig: logical_cpus unknown, so never flagged.
    EXPECT_FALSE(rec.oversubscribed);
    EXPECT_TRUE(rec.counters_note.empty());
    // And it must survive the wire format.
    EXPECT_EQ(parse_run_record(to_jsonl(rec)), rec);

    // With a known CPU count and more threads than CPUs, the record is
    // tagged oversubscribed and carries the counters-fallback reason.
    ExecConfig exec;
    exec.logical_cpus = 2;
    const RunRecord wide =
        make_run_record("poisson", bundle, *kernel, m, 3, 4, "by-nnz", &profiler, &sample,
                        std::move(exec), counters.unavailable_reason());
    EXPECT_TRUE(wide.oversubscribed);
    EXPECT_EQ(wide.counters_note, "disabled by SYMSPMV_NO_PERF");
    EXPECT_EQ(parse_run_record(to_jsonl(wide)), wide);
}

TEST(RunSink, AppendsParseableLines) {
    const std::string path = ::testing::TempDir() + "/obs_sink_test.jsonl";
    std::remove(path.c_str());
    {
        RunSink sink(path);
        sink.write(sample_record());
        sink.write(sample_record());
        EXPECT_EQ(sink.written(), 2u);
    }
    std::ifstream in(path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) {
        EXPECT_EQ(parse_run_record(line), sample_record());
        ++lines;
    }
    EXPECT_EQ(lines, 2);
    std::remove(path.c_str());
}

TEST(RunSink, TruncateModeStartsOver) {
    const std::string path = ::testing::TempDir() + "/obs_sink_trunc.jsonl";
    std::remove(path.c_str());
    {
        RunSink sink(path);  // default: append
        sink.write(sample_record());
        sink.write(sample_record());
    }
    {
        RunSink sink(path, RunSink::Mode::kTruncate);  // fresh sweep
        sink.write(sample_record());
    }
    std::ifstream in(path);
    std::string line;
    int lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, 1);
    std::remove(path.c_str());
}

TEST(RunSink, OpenFailureThrows) {
    EXPECT_THROW(RunSink("/nonexistent-dir/obs_sink.jsonl"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Trace

TEST(Trace, EmitsWellFormedChromeTraceJson) {
    const std::string path = ::testing::TempDir() + "/obs_trace_test.json";
    {
        TraceWriter writer(path);
        {
            TraceSpan span(&writer, "preprocess");
        }
        // Kernel phases arrive through the PhaseProfiler sink.
        PhaseProfiler profiler(2);
        profiler.set_trace_sink(&writer);
        profiler.record(0, Phase::kMultiply, 0.001);
        profiler.record(1, Phase::kMultiply, 0.002);
        profiler.record(0, Phase::kBarrier, 0.0005);
        profiler.record(1, Phase::kReduction, 0.0007);
        EXPECT_EQ(writer.events(), 5u);
        writer.flush();
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    const Json doc = Json::parse(buf.str());  // throws if malformed
    const JsonArray& events = doc.at("traceEvents").as_array();
    std::size_t spans = 0;
    bool saw_multiply = false;
    bool saw_process_name = false;
    std::vector<std::string> thread_names;
    for (const Json& e : events) {
        EXPECT_TRUE(e.at("name").is_string());
        const std::string ph = e.at("ph").as_string();
        if (ph == "M") {  // metadata: names the process/thread tracks
            if (e.at("name").as_string() == "process_name") {
                saw_process_name = true;
                EXPECT_EQ(e.at("args").at("name").as_string(), "symspmv");
            } else if (e.at("name").as_string() == "thread_name") {
                thread_names.push_back(e.at("args").at("name").as_string());
            }
            continue;
        }
        EXPECT_EQ(ph, "X");
        ++spans;
        EXPECT_GE(e.at("ts").as_double(), 0.0);
        EXPECT_GE(e.at("dur").as_double(), 0.0);
        EXPECT_TRUE(e.at("tid").is_int());
        saw_multiply = saw_multiply || e.at("name").as_string() == "multiply";
    }
    EXPECT_EQ(spans, 5u);
    EXPECT_TRUE(saw_multiply);
    EXPECT_TRUE(saw_process_name);
    // Tracks seen: workers 0 and 1 (profiler) plus the caller (TraceSpan).
    const std::vector<std::string> expected_names = {"worker 0", "worker 1", "caller"};
    EXPECT_EQ(thread_names, expected_names);
    std::remove(path.c_str());
}

TEST(Trace, NullWriterSpansAreNoOps) {
    TraceSpan span(nullptr, "nothing");  // must not crash on destruction
}

TEST(Trace, ProfilerResetKeepsSink) {
    const std::string path = ::testing::TempDir() + "/obs_trace_reset.json";
    TraceWriter writer(path);
    PhaseProfiler profiler(1);
    profiler.set_trace_sink(&writer);
    profiler.reset();
    profiler.record(0, Phase::kMultiply, 0.001);
    EXPECT_EQ(writer.events(), 1u);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace symspmv::obs
