// Tests for src/core: thread pool, partitioning, stats, options, allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/allocator.hpp"
#include "core/error.hpp"
#include "core/options.hpp"
#include "core/partition.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"

namespace symspmv {
namespace {

TEST(AlignedAllocator, VectorStorageIsCacheLineAligned) {
    aligned_vector<double> v(100, 1.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kCacheLineBytes, 0u);
    aligned_vector<index_t> w(7, 3);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % kCacheLineBytes, 0u);
}

TEST(ThreadPool, RunsJobOnEveryWorker) {
    ThreadPool pool(4);
    std::vector<int> hits(4, 0);
    pool.run([&](int tid) { hits[static_cast<std::size_t>(tid)] = tid + 1; });
    EXPECT_EQ(hits, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ThreadPool, RunCanBeRepeated) {
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int round = 0; round < 10; ++round) {
        pool.run([&](int) { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, BarrierSynchronizesPhases) {
    ThreadPool pool(4);
    std::vector<int> phase1(4, 0);
    std::atomic<bool> phase1_incomplete_seen{false};
    pool.run([&](int tid) {
        phase1[static_cast<std::size_t>(tid)] = 1;
        pool.barrier();
        // After the barrier every thread must observe all phase-1 writes.
        for (int v : phase1) {
            if (v != 1) phase1_incomplete_seen = true;
        }
    });
    EXPECT_FALSE(phase1_incomplete_seen.load());
}

TEST(ThreadPool, PropagatesJobException) {
    ThreadPool pool(2);
    EXPECT_THROW(pool.run([](int tid) {
        if (tid == 1) throw std::runtime_error("boom");
    }),
                 std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> ok{0};
    pool.run([&](int) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadPool, RejectsZeroWorkers) { EXPECT_THROW(ThreadPool(0), InternalError); }

TEST(ThreadPool, ThrowingWorkerPoisonsTheBarrierInsteadOfDeadlocking) {
    // Regression: a worker throwing *before* an in-job barrier used to
    // strand its peers in arrive_and_wait() forever (std::barrier has no
    // error path), so run() never returned.  The poisonable barrier turns
    // that into a clean rethrow on the caller.
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.run([&](int tid) {
                         if (tid == 0) throw std::runtime_error("died before the barrier");
                         pool.barrier();  // peers must unwind, not wait forever
                     }),
                     std::runtime_error);
    }
    // The barrier is re-armed: a healthy two-phase job still synchronizes.
    std::atomic<int> after{0};
    pool.run([&](int) {
        after.fetch_add(1);
        pool.barrier();
        after.fetch_add(1);
    });
    EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, AllWorkersThrowingStillRethrowsOneError) {
    ThreadPool pool(3);
    EXPECT_THROW(pool.run([](int) { throw std::runtime_error("everyone dies"); }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    pool.run([&](int) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 3);
}

TEST(SplitEven, DistributesRemainder) {
    const auto parts = split_even(10, 4);
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], (RowRange{0, 3}));
    EXPECT_EQ(parts[1], (RowRange{3, 6}));
    EXPECT_EQ(parts[2], (RowRange{6, 8}));
    EXPECT_EQ(parts[3], (RowRange{8, 10}));
}

TEST(SplitEven, MoreThreadsThanRows) {
    const auto parts = split_even(2, 5);
    index_t total = 0;
    for (const auto& p : parts) {
        EXPECT_LE(p.begin, p.end);
        total += p.rows();
    }
    EXPECT_EQ(total, 2);
    EXPECT_EQ(parts.front().begin, 0);
    EXPECT_EQ(parts.back().end, 2);
}

TEST(SplitByNnz, BalancesNonzeros) {
    // Row nnz: 1, 1, 1, 9, 1, 1, 1, 1 -> prefix 0,1,2,3,12,13,14,15,16.
    std::vector<index_t> rowptr = {0, 1, 2, 3, 12, 13, 14, 15, 16};
    const auto parts = split_by_nnz(rowptr, 2);
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0].begin, 0);
    EXPECT_EQ(parts[0].end, parts[1].begin);
    EXPECT_EQ(parts[1].end, 8);
    // The heavy row 3 must not leave partition 0 badly unbalanced: target 8.
    const index_t cut = parts[0].end;
    EXPECT_GE(cut, 3);
    EXPECT_LE(cut, 5);
}

TEST(SplitByNnz, CoversAllRowsContiguously) {
    std::vector<index_t> rowptr(101);
    std::iota(rowptr.begin(), rowptr.end(), 0);  // 1 nnz per row
    for (int p = 1; p <= 16; ++p) {
        const auto parts = split_by_nnz(rowptr, p);
        ASSERT_EQ(parts.size(), static_cast<std::size_t>(p));
        EXPECT_EQ(parts.front().begin, 0);
        EXPECT_EQ(parts.back().end, 100);
        for (std::size_t i = 1; i < parts.size(); ++i) {
            EXPECT_EQ(parts[i].begin, parts[i - 1].end);
        }
    }
}

TEST(SplitByNnz, EmptyMatrix) {
    std::vector<index_t> rowptr = {0};
    const auto parts = split_by_nnz(rowptr, 3);
    for (const auto& p : parts) EXPECT_EQ(p.rows(), 0);
}

TEST(Stats, SummarizeBasics) {
    const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
    const Summary s = summarize(v);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.median, 2.5);
    EXPECT_EQ(s.count, 4u);
    EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
}

TEST(Stats, SummarizeOddCountMedian) {
    const std::vector<double> v = {5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(summarize(v).median, 3.0);
}

TEST(Stats, SummarizeRejectsEmpty) {
    const std::vector<double> v;
    EXPECT_THROW(summarize(v), InternalError);
}

TEST(Options, ParsesFlagsAndPositionals) {
    const char* argv[] = {"prog", "--threads", "8",    "--scale=0.5", "matrix.mtx",
                          "--verbose",         "--name", "hello"};
    Options opts(8, argv);
    EXPECT_EQ(opts.get_int("--threads", 1), 8);
    EXPECT_DOUBLE_EQ(opts.get_double("--scale", 1.0), 0.5);
    EXPECT_TRUE(opts.has("--verbose"));
    EXPECT_FALSE(opts.has("--quiet"));
    EXPECT_EQ(opts.get_string("--name", ""), "hello");
    ASSERT_EQ(opts.positional().size(), 1u);
    EXPECT_EQ(opts.positional()[0], "matrix.mtx");
}

TEST(Options, FallbacksWhenAbsent) {
    const char* argv[] = {"prog"};
    Options opts(1, argv);
    EXPECT_EQ(opts.get_int("--threads", 7), 7);
    EXPECT_DOUBLE_EQ(opts.get_double("--scale", 2.5), 2.5);
    EXPECT_EQ(opts.get_string("--name", "dflt"), "dflt");
}

TEST(Options, RejectsMalformedNumbers) {
    const char* argv[] = {"prog", "--threads", "abc"};
    Options opts(3, argv);
    EXPECT_THROW((void)opts.get_int("--threads", 1), InternalError);
}

TEST(Timer, PhaseTimerAccumulates) {
    PhaseTimer t;
    t.start();
    t.stop();
    t.start();
    t.stop();
    EXPECT_EQ(t.intervals(), 2u);
    EXPECT_GE(t.total_seconds(), 0.0);
    t.clear();
    EXPECT_EQ(t.intervals(), 0u);
    EXPECT_EQ(t.total_seconds(), 0.0);
}

}  // namespace
}  // namespace symspmv
