// Tests for the ExecutionResources/ContextPool split: checkout, reuse, the
// "no pools spawned mid-sweep" contract and the by-socket partition.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/topology.hpp"
#include "engine/context.hpp"
#include "engine/resources.hpp"

namespace symspmv::engine {
namespace {

TEST(ContextPool, AcquireCachesByThreadsAndStrategy) {
    ContextPool pool(fake_topology(2, 2, 1));
    const auto a = pool.acquire(2, PinStrategy::kNone);
    const auto b = pool.acquire(2, PinStrategy::kNone);
    EXPECT_EQ(a.get(), b.get());  // same warm resources
    const auto c = pool.acquire(2, PinStrategy::kCompact);
    EXPECT_NE(a.get(), c.get());  // different pin layout, different pool
    const auto d = pool.acquire(3, PinStrategy::kNone);
    EXPECT_NE(a.get(), d.get());
    const ContextPool::Stats s = pool.stats();
    EXPECT_EQ(s.misses, 3u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.resident, 3u);
}

TEST(ContextPool, ClearDropsResidentResources) {
    ContextPool pool(fake_topology(1, 2, 1));
    auto r = pool.acquire(2, PinStrategy::kNone);
    EXPECT_EQ(pool.stats().resident, 1u);
    pool.clear();
    EXPECT_EQ(pool.stats().resident, 0u);
    // The checked-out resource survives the clear (shared ownership)...
    EXPECT_EQ(r->threads(), 2);
    // ...and the next acquire builds fresh.
    const auto r2 = pool.acquire(2, PinStrategy::kNone);
    EXPECT_NE(r.get(), r2.get());
}

TEST(ContextPool, ReturningIsDroppingTheHandle) {
    ContextPool pool(fake_topology(1, 4, 1));
    ThreadPool* first = nullptr;
    {
        const ExecutionContext ctx(pool.acquire(4, PinStrategy::kNone),
                                   ContextOptions{.threads = 4});
        first = &ctx.pool();
    }
    // The context died, but the pool kept its reference: the same workers
    // serve the next checkout.
    const ExecutionContext again(pool.acquire(4, PinStrategy::kNone),
                                 ContextOptions{.threads = 4});
    EXPECT_EQ(&again.pool(), first);
}

TEST(ContextPool, NoPoolsSpawnedMidSweep) {
    // A bench-style sweep: repeated context construction over a fixed set of
    // thread counts.  After the first round warms the cache, pools_created()
    // must stay flat — ExecutionContext construction is no longer paid per
    // repetition.
    const std::vector<int> counts = {1, 2, 3};
    for (int t : counts) {
        ExecutionContext warm{ContextOptions{.threads = t}};
    }
    const std::uint64_t baseline = ThreadPool::pools_created();
    for (int round = 0; round < 4; ++round) {
        for (int t : counts) {
            ExecutionContext ctx{ContextOptions{.threads = t}};
            EXPECT_EQ(ctx.threads(), t);
            // Varying per-run policy must not key a new pool either.
            ExecutionContext alt{ContextOptions{
                .threads = t, .partition = PartitionPolicy::kEvenRows}};
            EXPECT_EQ(&ctx.pool(), &alt.pool());
        }
    }
    EXPECT_EQ(ThreadPool::pools_created(), baseline);
}

TEST(ContextPool, LegacyPinFlagMapsToCompactStrategy) {
    EXPECT_EQ(effective_pin_strategy(ContextOptions{.pin_threads = true}),
              PinStrategy::kCompact);
    EXPECT_EQ(effective_pin_strategy(ContextOptions{.pin_threads = false}),
              PinStrategy::kNone);
    EXPECT_EQ(effective_pin_strategy(ContextOptions{.pin_threads = false,
                                                    .pin_strategy = PinStrategy::kScatter}),
              PinStrategy::kScatter);
}

TEST(ContextPool, BySocketPartitionGroupsWorkersBySocket) {
    // 2 sockets x 2 cores, per-socket pinning: workers {0,1} -> socket 0,
    // {2,3} -> socket 1.
    auto resources = std::make_shared<ExecutionResources>(4, PinStrategy::kPerSocket,
                                                          fake_topology(2, 2, 1));
    ASSERT_EQ(resources->socket_of_worker(), (std::vector<int>{0, 0, 1, 1}));
    const ExecutionContext ctx(resources,
                               ContextOptions{.threads = 4,
                                              .partition = PartitionPolicy::kBySocket});

    // 8 rows, uniform 3 nnz per row.
    std::vector<index_t> rowptr(9);
    for (std::size_t i = 0; i < rowptr.size(); ++i) rowptr[i] = static_cast<index_t>(3 * i);
    const auto parts = ctx.partition(rowptr);
    ASSERT_EQ(parts.size(), 4u);
    // The ranges tile [0, 8) in order...
    EXPECT_EQ(parts.front().begin, 0);
    EXPECT_EQ(parts.back().end, 8);
    for (std::size_t i = 1; i < parts.size(); ++i) {
        EXPECT_EQ(parts[i].begin, parts[i - 1].end);
    }
    // ...and with uniform rows the socket halves split the matrix evenly.
    EXPECT_EQ(parts[1].end, 4);
}

TEST(ContextPool, ExplicitResourcesMustMatchRequestedThreads) {
    auto resources = std::make_shared<ExecutionResources>(2, PinStrategy::kNone,
                                                          fake_topology(1, 2, 1));
    EXPECT_ANY_THROW(ExecutionContext(resources, ContextOptions{.threads = 3}));
    // threads == 0 adopts the resource's width.
    const ExecutionContext ctx(resources, ContextOptions{.threads = 0});
    EXPECT_EQ(ctx.threads(), 2);
    EXPECT_EQ(ctx.options().threads, 2);
}

TEST(ContextPool, TopologyIsVisibleThroughTheContext) {
    auto resources = std::make_shared<ExecutionResources>(2, PinStrategy::kCompact,
                                                          fake_topology(2, 4, 2));
    const ExecutionContext ctx(resources, ContextOptions{.threads = 2});
    EXPECT_EQ(ctx.topology().summary(), "2s/2n/8c/2t");
    EXPECT_EQ(ctx.resources().pin_cpus().size(), 2u);
}

TEST(ContextPoolLru, CapacityCapEvictsLeastRecentlyAcquired) {
    ContextPool pool(fake_topology(1, 8, 1));
    pool.set_capacity(2);
    EXPECT_EQ(pool.capacity(), 2u);

    auto a = pool.acquire(1, PinStrategy::kNone);
    auto b = pool.acquire(2, PinStrategy::kNone);
    EXPECT_EQ(pool.size(), 2u);

    // Touch (1, none) so (2, none) becomes the LRU victim.
    (void)pool.acquire(1, PinStrategy::kNone);
    auto c = pool.acquire(3, PinStrategy::kNone);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.stats().evictions, 1u);

    // (1, none) survived the eviction (it was touched); (2, none) did not.
    const auto a2 = pool.acquire(1, PinStrategy::kNone);
    EXPECT_EQ(a.get(), a2.get());
    const auto b2 = pool.acquire(2, PinStrategy::kNone);
    EXPECT_NE(b.get(), b2.get());
}

TEST(ContextPoolLru, EvictedEntryStaysAliveThroughOutstandingHandles) {
    ContextPool pool(fake_topology(1, 4, 1));
    pool.set_capacity(1);
    auto held = pool.acquire(2, PinStrategy::kNone);
    (void)pool.acquire(3, PinStrategy::kNone);  // evicts (2, none) from the cache
    EXPECT_EQ(pool.size(), 1u);
    // The checkout still works: shared ownership keeps the workers alive.
    EXPECT_EQ(held->threads(), 2);
    EXPECT_EQ(held->pool().size(), 2);
}

TEST(ContextPoolLru, ShrinkingTheCapEvictsImmediately) {
    ContextPool pool(fake_topology(1, 8, 1));
    for (int t = 1; t <= 4; ++t) (void)pool.acquire(t, PinStrategy::kNone);
    EXPECT_EQ(pool.size(), 4u);
    pool.set_capacity(2);
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.stats().evictions, 2u);
    // The two survivors are the most recently acquired shapes.
    const ContextPool::Stats before = pool.stats();
    (void)pool.acquire(3, PinStrategy::kNone);
    (void)pool.acquire(4, PinStrategy::kNone);
    EXPECT_EQ(pool.stats().hits, before.hits + 2);
}

TEST(ContextPoolLru, DaemonStyleSweepStaysBounded) {
    // The long-lived daemon scenario the cap exists for: clients request a
    // rotating spread of (threads, pinning) shapes far wider than the cap.
    // Residency must never exceed the cap, and a warm working set must keep
    // hitting once the rotation settles.
    ContextPool pool(fake_topology(1, 8, 1));
    pool.set_capacity(3);
    for (int round = 0; round < 10; ++round) {
        for (int t = 1; t <= 6; ++t) {
            (void)pool.acquire(t, PinStrategy::kNone);
            EXPECT_LE(pool.size(), 3u);
        }
    }
    EXPECT_GT(pool.stats().evictions, 0u);

    // A stable working set within the cap: after one warm-up round, no
    // further evictions, no new worker pools — every acquire is a hit.
    for (int t = 1; t <= 3; ++t) (void)pool.acquire(t, PinStrategy::kNone);
    const std::uint64_t evictions_stable = pool.stats().evictions;
    const std::uint64_t pools_before = ThreadPool::pools_created();
    for (int round = 0; round < 20; ++round) {
        for (int t = 1; t <= 3; ++t) (void)pool.acquire(t, PinStrategy::kNone);
    }
    EXPECT_EQ(pool.stats().evictions, evictions_stable);
    EXPECT_EQ(ThreadPool::pools_created(), pools_before);
}

TEST(ContextPoolLru, ZeroCapacityMeansUnbounded) {
    ContextPool pool(fake_topology(1, 8, 1));
    for (int t = 1; t <= 6; ++t) (void)pool.acquire(t, PinStrategy::kNone);
    EXPECT_EQ(pool.size(), 6u);
    EXPECT_EQ(pool.stats().evictions, 0u);
}

}  // namespace
}  // namespace symspmv::engine
