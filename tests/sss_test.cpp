// Tests for the SSS symmetric skyline format (§II.B, Alg. 2).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/error.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/sss.hpp"

namespace symspmv {
namespace {

Coo symmetric5() {
    Coo m(5, 5);
    const auto add_sym = [&](index_t r, index_t c, value_t v) {
        m.add(r, c, v);
        if (r != c) m.add(c, r, v);
    };
    add_sym(0, 0, 2.0);
    add_sym(1, 1, 3.0);
    add_sym(2, 2, 4.0);
    add_sym(3, 3, 5.0);
    add_sym(4, 4, 6.0);
    add_sym(1, 0, 1.0);
    add_sym(3, 0, -2.0);
    add_sym(4, 2, 0.5);
    add_sym(4, 3, 1.5);
    m.canonicalize();
    return m;
}

TEST(Sss, StoresDiagonalSeparately) {
    const Sss sss(symmetric5());
    ASSERT_EQ(sss.dvalues().size(), 5u);
    EXPECT_DOUBLE_EQ(sss.dvalues()[0], 2.0);
    EXPECT_DOUBLE_EQ(sss.dvalues()[4], 6.0);
    EXPECT_EQ(sss.values().size(), 4u);  // strictly lower entries only
    for (std::size_t r = 0; r < 5; ++r) {
        for (index_t j = sss.rowptr()[r]; j < sss.rowptr()[r + 1]; ++j) {
            EXPECT_LT(sss.colind()[static_cast<std::size_t>(j)], static_cast<index_t>(r));
        }
    }
}

TEST(Sss, NnzCountsFullMatrix) {
    const Coo full = symmetric5();
    const Sss sss(full);
    EXPECT_EQ(sss.nnz(), full.nnz());
    EXPECT_EQ(sss.stored_nnz(), 5u + 4u);
}

TEST(Sss, SizeBytesMatchesEq2) {
    const Coo full = symmetric5();
    const Sss sss(full);
    // Eq. (2): 6*(NNZ + N) + 4 with NNZ = 13, N = 5 -> 112 when the diagonal
    // is fully populated.
    EXPECT_EQ(sss.size_bytes(), 6u * (13 + 5) + 4u);
}

TEST(Sss, SizeIsAboutHalfOfCsr) {
    const Coo full = gen::banded_random(512, 64, 16.0, 7);
    const Csr csr(full);
    const Sss sss(full);
    const double ratio = static_cast<double>(sss.size_bytes()) / csr.size_bytes();
    EXPECT_LT(ratio, 0.62);
    EXPECT_GT(ratio, 0.45);
}

TEST(Sss, SerialSpmvMatchesCsr) {
    const Coo full = symmetric5();
    const Csr csr(full);
    const Sss sss(full);
    const std::vector<value_t> x = {1.0, -2.0, 0.5, 3.0, 2.0};
    std::vector<value_t> y_csr(5), y_sss(5);
    csr.spmv(x, y_csr);
    sss.spmv(x, y_sss);
    for (int i = 0; i < 5; ++i) EXPECT_NEAR(y_sss[i], y_csr[i], 1e-13);
}

TEST(Sss, ToCsrRoundTrip) {
    const Coo full = symmetric5();
    const Coo back = Sss(full).to_csr().to_coo();
    ASSERT_EQ(back.nnz(), full.nnz());
    for (index_t i = 0; i < full.nnz(); ++i) {
        EXPECT_EQ(back.entries()[static_cast<std::size_t>(i)],
                  full.entries()[static_cast<std::size_t>(i)]);
    }
}

TEST(Sss, RejectsNonSquare) {
    Coo m(2, 3);
    m.canonicalize();
    EXPECT_THROW(Sss sss(m), InternalError);
}

TEST(Sss, HandlesMissingDiagonalEntries) {
    Coo m(3, 3);
    m.add(1, 0, 2.0);
    m.add(0, 1, 2.0);
    m.canonicalize();
    const Sss sss(m);
    EXPECT_DOUBLE_EQ(sss.dvalues()[0], 0.0);
    EXPECT_EQ(sss.nnz(), 2);
    const std::vector<value_t> x = {1.0, 1.0, 1.0};
    std::vector<value_t> y(3);
    sss.spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 2.0);
    EXPECT_DOUBLE_EQ(y[1], 2.0);
    EXPECT_DOUBLE_EQ(y[2], 0.0);
}

class SssRandomized : public ::testing::TestWithParam<int> {};

TEST_P(SssRandomized, MatchesCsrOnRandomSpdMatrices) {
    const int seed = GetParam();
    const Coo full = gen::banded_random(200, 40, 10.0, static_cast<std::uint64_t>(seed),
                                        /*scatter_fraction=*/0.3);
    ASSERT_TRUE(full.is_symmetric());
    const Csr csr(full);
    const Sss sss(full);
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 7 + 1);
    std::uniform_real_distribution<value_t> dist(-2.0, 2.0);
    std::vector<value_t> x(200);
    for (auto& v : x) v = dist(rng);
    std::vector<value_t> y_csr(200), y_sss(200);
    csr.spmv(x, y_csr);
    sss.spmv(x, y_sss);
    for (int i = 0; i < 200; ++i) EXPECT_NEAR(y_sss[i], y_csr[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SssRandomized, ::testing::Range(1, 13));

}  // namespace
}  // namespace symspmv
