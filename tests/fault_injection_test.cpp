// Fault-injection harness over the ingestion paths: byte-level corruption
// and truncation of .smx streams, plan-cache files and MatrixMarket text.
// The checksummed binary formats must reject every fault cleanly (never a
// crash, never a silently different matrix/plan); the text format must
// never crash and must only ever accept structurally well-formed matrices.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/framing.hpp"
#include "matrix/binio.hpp"
#include "matrix/generators.hpp"
#include "verify/faults.hpp"

namespace symspmv {
namespace {

TEST(FaultInjection, SmxRejectsEveryTruncationAndBitFlip) {
    const Coo original = gen::make_spd(gen::banded_random(60, 8, 5.0, 3, 0.2));
    const verify::FaultReport rep = verify::fuzz_smx_stream(original, 17, 25, 400);
    EXPECT_TRUE(rep.strictly_clean()) << rep.summary(".smx");
    // Stronger: every byte of the stream is covered by the magic or the
    // trailing checksum, so every single fault must be a clean reject.
    EXPECT_EQ(rep.clean_rejects, rep.trials) << rep.summary(".smx");
}

TEST(FaultInjection, SmxRejectsEveryPrefixTruncationExhaustively) {
    const Coo original = gen::make_spd(gen::poisson2d(6, 6));
    std::ostringstream os;
    write_binary(os, original);
    const std::string full = os.str();
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        std::istringstream in(full.substr(0, cut));
        EXPECT_THROW(read_binary(in), ParseError) << "prefix of " << cut << " bytes";
    }
}

TEST(FaultInjection, PlanFilesMissOrServeTheExactPlan) {
    const verify::FaultReport rep = verify::fuzz_plan_file(23, 25, 400);
    EXPECT_TRUE(rep.strictly_clean()) << rep.summary("plan cache");
    EXPECT_GT(rep.clean_rejects, 0);
}

TEST(FaultInjection, MatrixMarketNeverCrashesAndOnlyAcceptsWellFormed) {
    const Coo original = gen::make_spd(gen::poisson2d(8, 8));
    const verify::FaultReport rep = verify::fuzz_matrix_market(original, 31, 20, 300);
    EXPECT_TRUE(rep.no_crashes()) << rep.summary("MatrixMarket");
}

TEST(FaultInjection, WireFramesRejectEveryTruncationAndBitFlip) {
    Frame frame;
    frame.type = 5;
    frame.trace_id = 0x1234abcd5678ef09ULL;  // the v2 field is fuzzed too
    frame.payload.assign(512, '\0');
    for (std::size_t i = 0; i < frame.payload.size(); ++i) {
        frame.payload[i] = static_cast<char>(i * 37 + 11);
    }
    const verify::FaultReport rep = verify::fuzz_frame_stream(frame, 41, 25, 400);
    EXPECT_TRUE(rep.strictly_clean()) << rep.summary("wire frame");
    EXPECT_EQ(rep.clean_rejects, rep.trials) << rep.summary("wire frame");
}

TEST(FaultInjection, LegacyWireFramesStillDecodeAndRejectEveryFault) {
    Frame frame;
    frame.type = 5;
    frame.trace_id = 0xfeedfacecafebeefULL;  // never on the v1 wire
    frame.payload = "legacy payload bytes";

    // Intact v1 stream: decodes as the same frame with no trace id.
    {
        std::istringstream in(encode_frame_legacy(frame), std::ios::binary);
        const auto loaded = read_frame(in);
        ASSERT_TRUE(loaded.has_value());
        EXPECT_EQ(loaded->type, frame.type);
        EXPECT_EQ(loaded->payload, frame.payload);
        EXPECT_EQ(loaded->trace_id, 0u);
    }

    // And every corrupted v1 stream is a clean reject.
    const verify::FaultReport rep = verify::fuzz_frame_stream_legacy(frame, 43, 25, 400);
    EXPECT_TRUE(rep.strictly_clean()) << rep.summary("legacy wire frame");
    EXPECT_EQ(rep.clean_rejects, rep.trials) << rep.summary("legacy wire frame");
}

TEST(FaultInjection, WireFrameTraceIdCorruptionIsACleanReject) {
    Frame frame;
    frame.type = 3;
    frame.trace_id = 0x0123456789abcdefULL;
    frame.payload = "payload";
    const std::string good = encode_frame(frame);
    // The trace id sits right after magic(4) + version(2) + type(2); mutate
    // each of its 8 bytes — the checksum covers the field, so a changed id
    // must never come back as a (differently-)valid frame.
    const std::size_t off = sizeof(kFrameMagic) + 4;
    for (std::size_t i = 0; i < 8; ++i) {
        std::string bad = good;
        bad[off + i] = static_cast<char>(bad[off + i] ^ 0x5a);
        std::istringstream in(bad, std::ios::binary);
        EXPECT_THROW((void)read_frame(in), ParseError) << "trace-id byte " << i;
    }
}

TEST(FaultInjection, WireFramesRejectEveryPrefixTruncationExhaustively) {
    Frame frame;
    frame.type = 2;
    frame.payload = "abcdefgh";
    const std::string full = encode_frame(frame);
    // cut = 0 is the clean between-frames EOF (nullopt); every other prefix
    // is a mid-frame truncation and must throw.
    {
        std::istringstream in(std::string(), std::ios::binary);
        EXPECT_FALSE(read_frame(in).has_value());
    }
    for (std::size_t cut = 1; cut < full.size(); ++cut) {
        std::istringstream in(full.substr(0, cut), std::ios::binary);
        EXPECT_THROW((void)read_frame(in), ParseError) << "prefix of " << cut << " bytes";
    }
}

TEST(FaultInjection, WireFrameOversizedLengthPrefixIsCheapCleanReject) {
    // Hand-craft a header whose length field claims ~4 GiB.  The reader must
    // reject on the prefix alone — before allocating or reading the body.
    std::string bytes(kFrameMagic, sizeof(kFrameMagic));
    const auto put16 = [&](std::uint16_t v) {
        bytes.push_back(static_cast<char>(v & 0xff));
        bytes.push_back(static_cast<char>(v >> 8));
    };
    put16(kFrameVersion);
    put16(5);
    for (int i = 0; i < 8; ++i) bytes.push_back('\x11');  // v2 trace id
    for (int shift = 0; shift < 32; shift += 8) {
        bytes.push_back(static_cast<char>((0xfffffff0u >> shift) & 0xff));
    }
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_THROW((void)read_frame(in), ParseError);

    // Same header with a ceiling the claimed length sits just above.
    std::istringstream tight(bytes, std::ios::binary);
    EXPECT_THROW((void)read_frame(tight, /*max_payload=*/4096), ParseError);
}

TEST(FaultInjection, ReportSummaryIsReadable) {
    const Coo original = gen::make_spd(gen::poisson2d(4, 4));
    const verify::FaultReport rep = verify::fuzz_smx_stream(original, 1, 3, 5);
    const std::string s = rep.summary(".smx");
    EXPECT_NE(s.find("clean rejects"), std::string::npos);
    EXPECT_NE(s.find(std::to_string(rep.trials)), std::string::npos);
}

}  // namespace
}  // namespace symspmv
