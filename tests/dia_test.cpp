// Tests for the DIA format (SPARSKIT diagonal storage with tail spill).
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <vector>

#include "core/thread_pool.hpp"
#include "matrix/dia.hpp"
#include "matrix/generators.hpp"
#include "spmv/baseline_kernels.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

TEST(Dia, StencilStoresFiveLanesNoTail) {
    const Coo coo = gen::make_spd(gen::poisson2d(12, 12));
    const Dia dia(coo);
    EXPECT_EQ(dia.diagonals(), 5);  // 5-point stencil: offsets 0, +-1, +-12
    EXPECT_EQ(dia.tail_nnz(), 0);
    EXPECT_EQ(dia.lane_nnz(), coo.nnz());
    // Offsets sorted ascending.
    for (int d = 1; d < dia.diagonals(); ++d) {
        EXPECT_LT(dia.offsets()[static_cast<std::size_t>(d - 1)],
                  dia.offsets()[static_cast<std::size_t>(d)]);
    }
}

TEST(Dia, ScatteredMatrixSpillsToTail) {
    const Coo coo = gen::make_spd(gen::banded_random(300, 120, 6.0, 3, 1.0));
    const Dia dia(coo, 16);
    EXPECT_EQ(dia.diagonals(), 16);
    EXPECT_GT(dia.tail_nnz(), 0);
    EXPECT_EQ(dia.lane_nnz() + dia.tail_nnz(), coo.nnz());
}

TEST(Dia, MaxDiagonalsZeroIsPureCoo) {
    const Coo coo = gen::make_spd(gen::poisson2d(8, 8));
    const Dia dia(coo, 0);
    EXPECT_EQ(dia.diagonals(), 0);
    EXPECT_EQ(dia.tail_nnz(), coo.nnz());
    const auto x = random_vector(coo.rows(), 1);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(y.size());
    dia.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST(Dia, SerialSpmvMatchesOracle) {
    for (std::uint64_t seed : {3, 5, 7}) {
        const Coo coo = gen::make_spd(gen::banded_random(250, 20, 6.0, seed, 0.3));
        const Dia dia(coo, 32);
        const auto x = random_vector(coo.rows(), seed);
        std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
        std::vector<value_t> y_ref(y.size());
        dia.spmv(x, y);
        coo.spmv(x, y_ref);
        expect_near_vectors(y_ref, y);
    }
}

TEST(Dia, BandedBeatsCsrFootprint) {
    // A pure stencil in DIA needs one offset per diagonal instead of a
    // column index per element.
    const Coo coo = gen::make_spd(gen::poisson2d(30, 30));
    const Dia dia(coo);
    // CSR: 12*nnz + 4*(n+1); DIA: 8*lanes*n + 4*lanes. With 5 lanes and
    // ~4.8 nnz/row DIA wins.
    EXPECT_LT(dia.size_bytes(),
              12 * static_cast<std::size_t>(coo.nnz()) + 4 * (static_cast<std::size_t>(coo.rows()) + 1));
}

class DiaThreads : public ::testing::TestWithParam<int> {};

TEST_P(DiaThreads, MtKernelMatchesOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::banded_random(400, 35, 7.0, 11, 0.4));
    DiaMtKernel kernel(Dia(coo, 24), pool);
    const auto x = random_vector(coo.rows(), 2);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(y.size());
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

INSTANTIATE_TEST_SUITE_P(Threads, DiaThreads, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace symspmv
