// Tests for Matrix Market I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "matrix/mmio.hpp"

namespace symspmv {
namespace {

TEST(Mmio, ReadsGeneralRealMatrix) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "3 3 3\n"
        "1 1 1.5\n"
        "2 3 -2.0\n"
        "3 1 4.0\n");
    const Coo m = read_matrix_market(in);
    EXPECT_EQ(m.rows(), 3);
    EXPECT_EQ(m.cols(), 3);
    ASSERT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.entries()[0], (Triplet{0, 0, 1.5}));
    EXPECT_EQ(m.entries()[1], (Triplet{1, 2, -2.0}));
    EXPECT_EQ(m.entries()[2], (Triplet{2, 0, 4.0}));
}

TEST(Mmio, MirrorsSymmetricFiles) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 1.0\n"
        "3 3 5.0\n");
    const Coo m = read_matrix_market(in);
    EXPECT_EQ(m.nnz(), 4);  // (0,0), (1,0), (0,1), (2,2)
    EXPECT_TRUE(m.is_symmetric());
}

TEST(Mmio, RawReadKeepsTriangle) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 2\n"
        "2 1 1.0\n"
        "3 2 4.0\n");
    MatrixMarketHeader header;
    const Coo m = read_matrix_market_raw(in, header);
    EXPECT_TRUE(header.symmetric);
    EXPECT_FALSE(header.pattern);
    EXPECT_EQ(m.nnz(), 2);
}

TEST(Mmio, PatternEntriesGetUnitValues) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 2\n"
        "2 1\n");
    const Coo m = read_matrix_market(in);
    ASSERT_EQ(m.nnz(), 2);
    EXPECT_DOUBLE_EQ(m.entries()[0].val, 1.0);
}

TEST(Mmio, IntegerFieldIsAccepted) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate integer general\n"
        "2 2 1\n"
        "1 1 3\n");
    const Coo m = read_matrix_market(in);
    EXPECT_DOUBLE_EQ(m.entries()[0].val, 3.0);
}

TEST(Mmio, RejectsMalformedInputs) {
    {
        std::istringstream in("not a matrix\n");
        EXPECT_THROW(read_matrix_market(in), ParseError);
    }
    {
        std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
        EXPECT_THROW(read_matrix_market(in), ParseError);
    }
    {
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
        EXPECT_THROW(read_matrix_market(in), ParseError);  // truncated
    }
    {
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
        EXPECT_THROW(read_matrix_market(in), ParseError);  // out of bounds
    }
    {
        std::istringstream in(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n");
        EXPECT_THROW(read_matrix_market(in), ParseError);  // unsupported field
    }
}

TEST(Mmio, StreamEndingBeforeTheSizeLineIsAParseError) {
    // Regression: the comment-skip loop did not distinguish EOF from "found
    // the size line", so a truncated file produced a misleading "malformed
    // size line: %<last comment>" error (or worse, parsed the comment).
    {
        std::istringstream in("%%MatrixMarket matrix coordinate real general\n");
        EXPECT_THROW(read_matrix_market(in), ParseError);
    }
    {
        std::istringstream in(
            "%%MatrixMarket matrix coordinate real general\n% only\n% comments\n");
        EXPECT_THROW(read_matrix_market(in), ParseError);
    }
}

TEST(Mmio, RejectsNnzBeyondMatrixCapacity) {
    // 2x2 cannot hold 5 entries; without the bound the dup-summing reader
    // would quietly accept the file (duplicates merge) or misreport later.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 5\n1 1 1.0\n1 2 1.0\n2 1 1.0\n2 2 1.0\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mmio, RejectsOversizedDimensions) {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n5000000000 5000000000 1\n1 1 1.0\n");
    EXPECT_THROW(read_matrix_market(in), ParseError);  // > 32-bit index range
}

TEST(Mmio, SymmetricFileWithRepeatedEntryIsAParseError) {
    // The repeated coordinate would be summed and then mirrored — a silently
    // doubled value, not a recoverable input.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n2 1 1.0\n2 1 2.0\n3 3 1.0\n");
    EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mmio, SymmetricFileStoringBothTrianglesIsAParseError) {
    // (2,1) and (1,2) both present: mirroring collides them and the pair
    // would sum — again a silent value change.
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n2 1 1.0\n1 2 1.0\n3 3 1.0\n");
    EXPECT_THROW(read_matrix_market(in), ParseError);
}

TEST(Mmio, GeneralFileStillSumsDuplicates) {
    // For *general* files duplicate coordinates remain legal input: they sum
    // (the raw reader reports it via the header flag).
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 3\n1 1 1.0\n1 1 2.5\n2 2 1.0\n");
    MatrixMarketHeader header;
    const Coo coo = read_matrix_market_raw(in, header);
    EXPECT_TRUE(header.duplicates);
    EXPECT_EQ(coo.nnz(), 2);
    EXPECT_DOUBLE_EQ(coo.entries()[0].val, 3.5);
}

TEST(Mmio, MissingFileThrows) {
    EXPECT_THROW(read_matrix_market_file("/nonexistent/foo.mtx"), ParseError);
}

TEST(Mmio, WriteReadRoundTripGeneral) {
    Coo m(3, 4);
    m.add(0, 3, 1.25);
    m.add(2, 0, -7.5);
    m.canonicalize();
    std::ostringstream out;
    write_matrix_market(out, m);
    std::istringstream in(out.str());
    const Coo back = read_matrix_market(in);
    EXPECT_EQ(back.rows(), 3);
    EXPECT_EQ(back.cols(), 4);
    ASSERT_EQ(back.nnz(), 2);
    EXPECT_EQ(back.entries()[0], (Triplet{0, 3, 1.25}));
    EXPECT_EQ(back.entries()[1], (Triplet{2, 0, -7.5}));
}

TEST(Mmio, WriteReadRoundTripSymmetric) {
    Coo m(3, 3);
    m.add(0, 0, 2.0);
    m.add(1, 0, 1.0);
    m.add(0, 1, 1.0);
    m.add(2, 2, 3.0);
    m.canonicalize();
    std::ostringstream out;
    write_matrix_market(out, m, /*as_symmetric=*/true);
    EXPECT_NE(out.str().find("symmetric"), std::string::npos);
    std::istringstream in(out.str());
    const Coo back = read_matrix_market(in);
    ASSERT_EQ(back.nnz(), m.nnz());
    EXPECT_TRUE(back.is_symmetric());
}

TEST(Mmio, SymmetricWriteRejectsAsymmetric) {
    Coo m(2, 2);
    m.add(0, 1, 1.0);
    m.canonicalize();
    std::ostringstream out;
    EXPECT_THROW(write_matrix_market(out, m, true), InternalError);
}

}  // namespace
}  // namespace symspmv
