// Tests for the alternative symmetric parallelizations: conflict-graph
// coloring [7] and atomic output updates (§III.A's dismissed option).
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <set>
#include <vector>

#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "spmv/alt_kernels.hpp"
#include "spmv/coloring.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

/// Exact write set of a block: its rows plus the below-block columns.
std::set<index_t> write_set(const Sss& sss, RowRange block) {
    std::set<index_t> out;
    for (index_t r = block.begin; r < block.end; ++r) out.insert(r);
    for (index_t r = block.begin; r < block.end; ++r) {
        for (index_t j = sss.rowptr()[static_cast<std::size_t>(r)];
             j < sss.rowptr()[static_cast<std::size_t>(r) + 1]; ++j) {
            const index_t c = sss.colind()[static_cast<std::size_t>(j)];
            if (c < block.begin) out.insert(c);
        }
    }
    return out;
}

TEST(ColoringPlan, CoversAllBlocksExactlyOnce) {
    const Sss sss(gen::make_spd(gen::banded_random(240, 20, 6.0, 3)));
    const ColoringPlan plan(sss, 12);
    EXPECT_EQ(plan.blocks(), 12);
    std::set<int> seen(plan.blocks_of_color().begin(), plan.blocks_of_color().end());
    EXPECT_EQ(static_cast<int>(seen.size()), 12);
    EXPECT_EQ(plan.color_ptr().front(), 0u);
    EXPECT_EQ(plan.color_ptr().back(), 12u);
}

TEST(ColoringPlan, SameColorBlocksHaveDisjointWriteSets) {
    const Sss sss(gen::make_spd(gen::banded_random(300, 35, 7.0, 5, 0.3)));
    const ColoringPlan plan(sss, 16);
    for (int c = 0; c < plan.colors(); ++c) {
        const std::size_t lo = plan.color_ptr()[static_cast<std::size_t>(c)];
        const std::size_t hi = plan.color_ptr()[static_cast<std::size_t>(c) + 1];
        for (std::size_t i = lo; i < hi; ++i) {
            for (std::size_t j = i + 1; j < hi; ++j) {
                const auto wa = write_set(sss, plan.block_ranges()[static_cast<std::size_t>(
                                                   plan.blocks_of_color()[i])]);
                const auto wb = write_set(sss, plan.block_ranges()[static_cast<std::size_t>(
                                                   plan.blocks_of_color()[j])]);
                std::vector<index_t> overlap;
                std::ranges::set_intersection(wa, wb, std::back_inserter(overlap));
                EXPECT_TRUE(overlap.empty())
                    << "blocks " << plan.blocks_of_color()[i] << " and "
                    << plan.blocks_of_color()[j] << " share color " << c;
            }
        }
    }
}

TEST(ColoringPlan, DiagonalMatrixNeedsOneColor) {
    // Pure diagonal: no mirrored writes, every block is independent.
    Coo coo(64, 64);
    for (index_t i = 0; i < 64; ++i) coo.add(i, i, 2.0);
    coo.canonicalize();
    const Sss sss(coo);
    const ColoringPlan plan(sss, 8);
    EXPECT_EQ(plan.colors(), 1);
    EXPECT_EQ(plan.max_parallelism(), 8);
}

TEST(ColoringPlan, DenseBandNeedsMultipleColors) {
    const Sss sss(gen::make_spd(gen::banded_random(256, 40, 10.0, 7)));
    const ColoringPlan plan(sss, 8);
    EXPECT_GT(plan.colors(), 1) << "adjacent band blocks must conflict";
}

class AltKernelThreads : public ::testing::TestWithParam<int> {};

TEST_P(AltKernelThreads, AtomicKernelMatchesOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::banded_random(350, 30, 7.0, 11, 0.25));
    SssAtomicKernel kernel(Sss(coo), pool);
    const auto x = random_vector(coo.rows(), 1);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST_P(AltKernelThreads, ColorKernelMatchesOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::banded_random(350, 30, 7.0, 13, 0.25));
    SssColorKernel kernel(Sss(coo), pool);
    const auto x = random_vector(coo.rows(), 2);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST_P(AltKernelThreads, ColorKernelHandlesHighBandwidthMatrix) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::power_law_circuit(400, 4.0, 17));
    SssColorKernel kernel(Sss(coo), pool, 6);
    const auto x = random_vector(coo.rows(), 3);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

INSTANTIATE_TEST_SUITE_P(Threads, AltKernelThreads, ::testing::Values(1, 2, 3, 4, 8));

TEST(AltKernels, RepeatedCallsAreConsistent) {
    ThreadPool pool(4);
    const Coo coo = gen::make_spd(gen::poisson2d(20, 20));
    SssAtomicKernel atomic_kernel(Sss(coo), pool);
    SssColorKernel color_kernel(Sss(coo), pool);
    const auto x = random_vector(coo.rows(), 4);
    std::vector<value_t> y1(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y2(static_cast<std::size_t>(coo.rows()));
    atomic_kernel.spmv(x, y1);
    atomic_kernel.spmv(x, y2);
    expect_near_vectors(y1, y2);
    color_kernel.spmv(x, y1);
    color_kernel.spmv(x, y2);
    for (std::size_t i = 0; i < y1.size(); ++i) {
        EXPECT_DOUBLE_EQ(y1[i], y2[i]);  // deterministic: no atomics involved
    }
}

}  // namespace
}  // namespace symspmv
