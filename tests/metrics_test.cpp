// Metrics registry: instrument semantics (sharded counters, histogram
// bucket boundaries and percentiles), registry identity rules, and both
// exposition formats (JSON, Prometheus text 0.0.4).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace symspmv::obs::metrics {
namespace {

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(Counter, ConcurrentAddsSumExactly) {
    Registry reg;
    Counter& c = reg.counter("test_total", "test");
    constexpr int kThreads = 8;
    constexpr int kAdds = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < kAdds; ++i) c.add();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST(Gauge, SetAndAdd) {
    Registry reg;
    Gauge& g = reg.gauge("test_gauge", "test");
    g.set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.add(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

// ---------------------------------------------------------------------------
// Histogram bucket boundaries

TEST(Histogram, BucketBoundariesAreHalfOpenPowersOfTwo) {
    // Bucket 0: everything below 1 ns (zero, negative, NaN included).
    EXPECT_EQ(Histogram::bucket_index(0.0), 0);
    EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
    EXPECT_EQ(Histogram::bucket_index(0.5e-9), 0);
    EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0);
    // A value exactly on a power-of-two boundary opens its own bucket.
    EXPECT_EQ(Histogram::bucket_index(1e-9), 1);   // [1 ns, 2 ns)
    EXPECT_EQ(Histogram::bucket_index(1.5e-9), 1);
    EXPECT_EQ(Histogram::bucket_index(2e-9), 2);   // [2 ns, 4 ns)
    EXPECT_EQ(Histogram::bucket_index(4e-9), 3);
    // 1 µs = 1000 ns: 2^9 = 512 <= 1000 < 1024 = 2^10, so bucket 10.
    EXPECT_EQ(Histogram::bucket_index(1e-6), 10);
    // Values beyond the range clamp into the overflow bucket.
    EXPECT_EQ(Histogram::bucket_index(1e9), Histogram::kBuckets - 1);
}

TEST(Histogram, UpperBoundsMatchTheIndexing) {
    for (int i = 0; i + 1 < Histogram::kBuckets - 1; ++i) {
        const double ub = Histogram::upper_bound(i);
        // The upper bound of bucket i is the first value of bucket i+1.
        EXPECT_EQ(Histogram::bucket_index(ub), i + 1) << "bucket " << i;
        // And anything just below it still belongs to bucket i (or lower,
        // for bucket 0 whose lower range is open-ended).
        EXPECT_LE(Histogram::bucket_index(std::nextafter(ub, 0.0)), i);
    }
    EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBuckets - 1)));
}

// ---------------------------------------------------------------------------
// Histogram percentiles

TEST(Histogram, QuantilesInterpolateInsideTheWinningBucket) {
    Registry reg;
    Histogram& h = reg.histogram("test_seconds", "test");
    // 100 observations, all inside bucket [1 ns, 2 ns).
    for (int i = 0; i < 100; ++i) h.observe(1.5e-9);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 100u);
    EXPECT_NEAR(s.sum, 100 * 1.5e-9, 1e-15);
    // p50: rank 50 of 100 in a bucket spanning [1e-9, 2e-9) -> halfway.
    EXPECT_NEAR(s.quantile(0.50), 1.5e-9, 1e-15);
    // p100: rank 100 -> the bucket's upper bound.
    EXPECT_NEAR(s.quantile(1.0), 2e-9, 1e-15);
}

TEST(Histogram, QuantilesAcrossBuckets) {
    Registry reg;
    Histogram& h = reg.histogram("test_seconds", "test");
    // 90 fast (bucket [1,2) ns) + 10 slow (bucket [1024, 2048) ns).
    for (int i = 0; i < 90; ++i) h.observe(1.5e-9);
    for (int i = 0; i < 10; ++i) h.observe(1.5e-6);
    const Histogram::Snapshot s = h.snapshot();
    // p50 lands in the fast bucket, p95 in the slow one.
    EXPECT_LT(s.quantile(0.50), 2e-9);
    EXPECT_GE(s.quantile(0.95), 1024e-9);
    EXPECT_LT(s.quantile(0.95), 2048e-9);
    // p99 too (rank 99 of 100, the 9th of 10 slow samples).
    EXPECT_GE(s.quantile(0.99), 1024e-9);
    // Monotone in q.
    EXPECT_LE(s.quantile(0.50), s.quantile(0.95));
    EXPECT_LE(s.quantile(0.95), s.quantile(0.99));
}

TEST(Histogram, EmptyQuantileIsZero) {
    Registry reg;
    Histogram& h = reg.histogram("test_seconds", "test");
    EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Registry identity

TEST(Registry, SameNameAndLabelsReturnsTheSameInstrument) {
    Registry reg;
    Counter& a = reg.counter("hits_total", "hits", {{"cache", "plan"}});
    Counter& b = reg.counter("hits_total", "hits", {{"cache", "plan"}});
    EXPECT_EQ(&a, &b);
    // Label order must not matter: identity is the *sorted* label set.
    Counter& c = reg.counter("multi_total", "m", {{"b", "2"}, {"a", "1"}});
    Counter& d = reg.counter("multi_total", "m", {{"a", "1"}, {"b", "2"}});
    EXPECT_EQ(&c, &d);
    // Different labels: a different series.
    Counter& e = reg.counter("hits_total", "hits", {{"cache", "other"}});
    EXPECT_NE(&a, &e);
}

TEST(Registry, KindConflictThrows) {
    Registry reg;
    reg.counter("thing", "c");
    EXPECT_THROW(reg.gauge("thing", "g"), InvalidArgument);
    EXPECT_THROW(reg.histogram("thing", "h"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Prometheus exposition

TEST(Prometheus, LabelValuesAreEscapedAndKeysSorted) {
    EXPECT_EQ(render_labels({{"path", "a\\b\"c\nd"}}),
              "{path=\"a\\\\b\\\"c\\nd\"}");
    // render_labels renders in stored order; the registry stores sorted.
    Registry reg;
    reg.counter("t_total", "t", {{"zz", "1"}, {"aa", "2"}}).add(1);
    const std::string text = reg.to_prometheus();
    EXPECT_NE(text.find("t_total{aa=\"2\",zz=\"1\"} 1\n"), std::string::npos) << text;
}

TEST(Prometheus, HelpAndTypeAnnouncedOncePerName) {
    Registry reg;
    reg.counter("hits_total", "Cache hits", {{"cache", "a"}}).add(3);
    reg.counter("hits_total", "Cache hits", {{"cache", "b"}}).add(4);
    const std::string text = reg.to_prometheus();
    EXPECT_EQ(text, "# HELP hits_total Cache hits\n"
                    "# TYPE hits_total counter\n"
                    "hits_total{cache=\"a\"} 3\n"
                    "hits_total{cache=\"b\"} 4\n");
}

TEST(Prometheus, HistogramIsCumulativeWithInfBucket) {
    Registry reg;
    Histogram& h = reg.histogram("lat_seconds", "latency");
    h.observe(1.5e-9);  // bucket 1, le=2e-09
    h.observe(1.5e-9);
    h.observe(3e-9);    // bucket 2, le=4e-09
    const std::string text = reg.to_prometheus();
    EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
    EXPECT_NE(text.find("lat_seconds_bucket{le=\"2e-09\"} 2\n"), std::string::npos) << text;
    EXPECT_NE(text.find("lat_seconds_bucket{le=\"4e-09\"} 3\n"), std::string::npos) << text;
    // +Inf is always emitted and equals the total count.
    EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos) << text;
    EXPECT_NE(text.find("lat_seconds_count 3\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON exposition

TEST(JsonExport, HistogramCarriesPercentilesAndSparseBuckets) {
    Registry reg;
    Histogram& h = reg.histogram("lat_seconds", "latency");
    for (int i = 0; i < 10; ++i) h.observe(1.5e-9);
    const Json doc = reg.to_json();
    const JsonArray& metrics = doc.at("metrics").as_array();
    ASSERT_EQ(metrics.size(), 1u);
    const Json& m = metrics[0];
    EXPECT_EQ(m.at("name").as_string(), "lat_seconds");
    EXPECT_EQ(m.at("kind").as_string(), "histogram");
    EXPECT_EQ(m.at("count").as_int(), 10);
    EXPECT_NEAR(m.at("p50").as_double(), 1.5e-9, 1e-15);
    EXPECT_EQ(m.at("buckets").as_array().size(), 1u);  // sparse
}

// ---------------------------------------------------------------------------
// Collectors

TEST(Collectors, PoolMetricsScrapeLiveStats) {
    Registry reg;
    ThreadPool pool(2);
    register_pool_metrics(reg, pool);
    pool.run([](int) {});
    pool.run([&pool](int) { pool.barrier(); });
    const Json doc = reg.to_json();
    double jobs = -1.0, crossings = -1.0, threads = -1.0;
    for (const Json& m : doc.at("metrics").as_array()) {
        const std::string& name = m.at("name").as_string();
        if (name == "symspmv_pool_jobs_total") jobs = m.at("value").as_double();
        if (name == "symspmv_pool_barrier_crossings_total") {
            crossings = m.at("value").as_double();
        }
        if (name == "symspmv_pool_threads") threads = m.at("value").as_double();
    }
    EXPECT_EQ(jobs, 2.0);
    EXPECT_EQ(crossings, 2.0);  // one barrier crossed by two workers
    EXPECT_EQ(threads, 2.0);
}

TEST(Collectors, AppearInPrometheusWithHeaders) {
    Registry reg;
    ThreadPool pool(1);
    register_pool_metrics(reg, pool);
    const std::string text = reg.to_prometheus();
    EXPECT_NE(text.find("# TYPE symspmv_pool_jobs_total counter"), std::string::npos);
    EXPECT_NE(text.find("# TYPE symspmv_pool_threads gauge"), std::string::npos);
    EXPECT_NE(text.find("symspmv_pool_threads 1\n"), std::string::npos);
}

}  // namespace
}  // namespace symspmv::obs::metrics
