// Tests for the CSB / CSB-Sym formats and kernels (related work [8], [27]).
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/thread_pool.hpp"
#include "csb/csb.hpp"
#include "csb/csb_kernels.hpp"
#include "matrix/generators.hpp"

namespace symspmv::csb {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR(expected[i], actual[i], 1e-9 * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

TEST(CsbConfig, AutoBlockSizeIsPowerOfTwoNearSqrtN) {
    EXPECT_EQ(resolve_block_size({}, 1), CsbConfig::kMinBlock);
    EXPECT_EQ(resolve_block_size({}, 100), 16);     // ceil-pow2(10)
    EXPECT_EQ(resolve_block_size({}, 10'000), 128); // ceil-pow2(100)
    const index_t b = resolve_block_size({}, 1 << 20);
    EXPECT_EQ(b & (b - 1), 0);
}

TEST(CsbConfig, ExplicitBlockSizeMustBePowerOfTwo) {
    CsbConfig cfg;
    cfg.block_size = 48;
    EXPECT_ANY_THROW((void)resolve_block_size(cfg, 100));
    cfg.block_size = 64;
    EXPECT_EQ(resolve_block_size(cfg, 100), 64);
}

TEST(CsbMatrix, RoundTripsAllElements) {
    const Coo coo = gen::make_spd(gen::banded_random(200, 12, 6.0, 7, 0.1));
    CsbConfig cfg;
    cfg.block_size = 16;
    const CsbMatrix csb(coo, cfg);
    EXPECT_EQ(csb.nnz(), coo.nnz());
    EXPECT_EQ(csb.rows(), coo.rows());
    EXPECT_EQ(csb.block_rows(), (coo.rows() + 15) / 16);
    // Every stored element reconstructs a COO entry.
    std::vector<Triplet> seen;
    for (index_t br = 0; br < csb.block_rows(); ++br) {
        for (index_t b = csb.blockrow_ptr()[static_cast<std::size_t>(br)];
             b < csb.blockrow_ptr()[static_cast<std::size_t>(br) + 1]; ++b) {
            const BlockRef& blk = csb.block_refs()[static_cast<std::size_t>(b)];
            for (std::int64_t k = blk.first; k < blk.first + csb.block_nnz(b); ++k) {
                seen.push_back({static_cast<index_t>(br * 16 + csb.rloc()[static_cast<std::size_t>(k)]),
                                static_cast<index_t>(blk.block_col * 16 +
                                                     csb.cloc()[static_cast<std::size_t>(k)]),
                                csb.values()[static_cast<std::size_t>(k)]});
            }
        }
    }
    std::ranges::sort(seen, triplet_rowmajor_less);
    ASSERT_EQ(seen.size(), coo.entries().size());
    for (std::size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], coo.entries()[i]);
    }
}

TEST(CsbMatrix, LocalIndicesStayInsideBlocks) {
    const Coo coo = gen::make_spd(gen::banded_random(300, 40, 8.0, 11, 0.2));
    CsbConfig cfg;
    cfg.block_size = 32;
    const CsbMatrix csb(coo, cfg);
    for (std::size_t k = 0; k < static_cast<std::size_t>(csb.nnz()); ++k) {
        EXPECT_LT(csb.rloc()[k], 32);
        EXPECT_LT(csb.cloc()[k], 32);
    }
}

TEST(CsbMatrix, SerialSpmvMatchesCooOracle) {
    const Coo coo = gen::make_spd(gen::banded_random(257, 20, 5.0, 3, 0.15));
    const CsbMatrix csb(coo);
    const auto x = random_vector(coo.rows(), 1);
    std::vector<value_t> y_csb(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    csb.spmv(x, y_csb);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y_csb);
}

TEST(CsbMatrix, FootprintCountsBlocksAndElements) {
    const Coo coo = gen::make_spd(gen::poisson2d(20, 20));
    CsbConfig cfg;
    cfg.block_size = 64;
    const CsbMatrix csb(coo, cfg);
    const std::size_t expected = static_cast<std::size_t>(csb.nnz()) * (8 + 2 + 2) +
                                 static_cast<std::size_t>(csb.blocks()) * sizeof(BlockRef) +
                                 (static_cast<std::size_t>(csb.block_rows()) + 1) * 4;
    EXPECT_EQ(csb.size_bytes(), expected);
}

TEST(CsbMatrix, HandlesEmptyMatrix) {
    const Coo coo(10, 10);
    const CsbMatrix csb(coo);
    EXPECT_EQ(csb.nnz(), 0);
    const auto x = random_vector(10, 2);
    std::vector<value_t> y(10, 1.0);
    csb.spmv(x, y);
    for (value_t v : y) EXPECT_EQ(v, 0.0);
}

TEST(CsbSymMatrix, StoresOnlyLowerTriangle) {
    const Coo coo = gen::make_spd(gen::banded_random(128, 10, 4.0, 5));
    const CsbSymMatrix sym(coo);
    EXPECT_EQ(sym.nnz(), coo.nnz());
    EXPECT_LT(sym.stored_nnz(), sym.nnz());
    EXPECT_LT(sym.size_bytes(), CsbMatrix(coo).size_bytes());
}

TEST(CsbSymMatrix, SerialSpmvMatchesCooOracle) {
    const Coo coo = gen::make_spd(gen::banded_random(211, 16, 6.0, 13, 0.25));
    const CsbSymMatrix sym(coo);
    const auto x = random_vector(coo.rows(), 3);
    std::vector<value_t> y_sym(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    sym.spmv(x, y_sym);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y_sym);
}

class CsbKernelThreads : public ::testing::TestWithParam<int> {};

TEST_P(CsbKernelThreads, MtKernelMatchesOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::banded_random(400, 25, 7.0, 17, 0.2));
    CsbMtKernel kernel(CsbMatrix(coo), pool);
    const auto x = random_vector(coo.rows(), 4);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST_P(CsbKernelThreads, SymKernelMatchesOracle) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::banded_random(400, 25, 7.0, 19, 0.2));
    CsbSymKernel kernel(CsbSymMatrix(coo), pool);
    const auto x = random_vector(coo.rows(), 5);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    kernel.spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST_P(CsbKernelThreads, SymKernelIsRepeatable) {
    ThreadPool pool(GetParam());
    const Coo coo = gen::make_spd(gen::power_law_circuit(350, 4.0, 23));
    CsbSymKernel kernel(CsbSymMatrix(coo), pool);
    const auto x = random_vector(coo.rows(), 6);
    std::vector<value_t> y1(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y2(static_cast<std::size_t>(coo.rows()));
    kernel.spmv(x, y1);
    kernel.spmv(x, y2);  // band buffers must have been re-zeroed
    for (std::size_t i = 0; i < y1.size(); ++i) {
        EXPECT_DOUBLE_EQ(y1[i], y2[i]);
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, CsbKernelThreads, ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(CsbSymKernel, HighBandwidthMatrixTriggersAtomics) {
    ThreadPool pool(4);
    // Fully scattered matrix: many far-from-diagonal blocks.
    const Coo scattered = gen::make_spd(gen::banded_random(512, 250, 6.0, 29, 1.0));
    CsbConfig cfg;
    cfg.block_size = 16;
    CsbSymKernel far_kernel(CsbSymMatrix(scattered, cfg), pool);
    EXPECT_GT(far_kernel.atomic_updates_per_spmv(), 0);

    // Narrow band, wide blocks: everything stays within the band diagonals.
    const Coo banded = gen::make_spd(gen::banded_random(512, 8, 6.0, 31, 0.0));
    cfg.block_size = 64;
    CsbSymKernel near_kernel(CsbSymMatrix(banded, cfg), pool);
    EXPECT_EQ(near_kernel.atomic_updates_per_spmv(), 0);
}

TEST(CsbSymKernel, PoissonStencilMatchesOracleAcrossBlockSizes) {
    ThreadPool pool(3);
    const Coo coo = gen::make_spd(gen::poisson2d(24, 24));
    const auto x = random_vector(coo.rows(), 7);
    std::vector<value_t> y_ref(static_cast<std::size_t>(coo.rows()));
    coo.spmv(x, y_ref);
    for (index_t beta : {4, 8, 32, 128}) {
        CsbConfig cfg;
        cfg.block_size = beta;
        CsbSymKernel kernel(CsbSymMatrix(coo, cfg), pool);
        std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
        kernel.spmv(x, y);
        expect_near_vectors(y_ref, y);
    }
}

TEST(CsbSymKernel, ReportsConstantReductionFootprint) {
    const Coo coo = gen::make_spd(gen::banded_random(600, 30, 6.0, 37));
    CsbConfig cfg;
    cfg.block_size = 32;
    ThreadPool pool2(2);
    ThreadPool pool8(8);
    CsbSymKernel k2(CsbSymMatrix(coo, cfg), pool2);
    CsbSymKernel k8(CsbSymMatrix(coo, cfg), pool8);
    // Band buffers grow with p but each stays <= (kBandDiagonals-1)*beta:
    const std::size_t per_thread = (CsbSymKernel::kBandDiagonals - 1) * 32 * sizeof(value_t);
    EXPECT_LE(k2.footprint_bytes() - k2.matrix().size_bytes(), 2 * per_thread);
    EXPECT_LE(k8.footprint_bytes() - k8.matrix().size_bytes(), 8 * per_thread);
}

}  // namespace
}  // namespace symspmv::csb
