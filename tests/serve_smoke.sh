#!/usr/bin/env bash
# Daemon lifecycle smoke: boot symspmv_serve on an ephemeral port, run the
# client's end-to-end smoke sequence, pull a flight-recorder trace dump and
# validate it as Chrome trace JSON, scrape /metrics as plain HTTP on the
# same listener, then SIGTERM the daemon and require a clean drain line.
#
# usage: serve_smoke.sh <symspmv_serve> <symspmv_client>
# env:   TRACE_OUT  where the trace dump lands (default: a temp file); CI
#                   points this at an artifact path.
set -u

SERVE_BIN=$1
CLIENT_BIN=$2
LOG=$(mktemp)
SLOW_LOG=$(mktemp)
TRACE_OUT=${TRACE_OUT:-$(mktemp)}
trap 'kill "$SERVE_PID" 2>/dev/null; rm -f "$LOG" "$SLOW_LOG"' EXIT

fail() {
    echo "serve_smoke: FAIL: $1"
    echo "--- daemon log ---"
    cat "$LOG"
    exit 1
}

"$SERVE_BIN" --port 0 --workers 2 --threads 2 --slow-log "$SLOW_LOG" > "$LOG" 2>&1 &
SERVE_PID=$!

# Wait for the listening line and parse the kernel-assigned port.
PORT=""
for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$LOG" | head -n1)
    [ -n "$PORT" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
done
[ -n "$PORT" ] || fail "daemon never printed its listening line"

"$CLIENT_BIN" --port "$PORT" --ping | grep -q PONG || fail "ping"
"$CLIENT_BIN" --port "$PORT" --smoke | grep -q "SMOKE PASS" || fail "client smoke sequence"

# /metrics over the binary protocol must expose the serving series.
METRICS=$("$CLIENT_BIN" --port "$PORT" --metrics)
echo "$METRICS" | grep -q "symspmv_serve_requests_total" || fail "metrics: request counters"
echo "$METRICS" | grep -q "symspmv_serve_request_seconds_bucket" || fail "metrics: histograms"
echo "$METRICS" | grep -q "symspmv_serve_shed_total" || fail "metrics: shed counter"
echo "$METRICS" | grep -q 'symspmv_serve_build_info{' || fail "metrics: build info"
echo "$METRICS" | grep -q 'symspmv_serve_requests_total{outcome="ok"}' \
    || fail "metrics: outcome counters"
echo "$METRICS" | grep -q 'symspmv_serve_request_seconds_count{phase="total"}' \
    || fail "metrics: phase histograms"

# The flight recorder must replay the smoke's requests as one well-formed
# Chrome trace_event document with span/trace ids in the event args.
"$CLIENT_BIN" --port "$PORT" --dump-trace "$TRACE_OUT" > /dev/null \
    || fail "trace dump request"
python3 - "$TRACE_OUT" << 'EOF' || fail "trace dump is not a valid Chrome trace"
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "no trace events"
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "no duration events"
for e in spans:
    assert e["dur"] >= 0 and "name" in e and "ts" in e
    args = e.get("args", {})
    assert args.get("trace_id", "0x").startswith("0x"), "span without a trace id"
names = {e["name"] for e in spans}
for expected in ("request", "read-frame", "queue-wait", "handle:spmv"):
    assert expected in names, f"missing the {expected} span: {sorted(names)}"
print(f"trace dump OK: {len(spans)} spans, {len(names)} distinct names")
EOF

# The same listener speaks plain HTTP for scrapers (python is in the CI
# image; bash /dev/tcp is the fallback).
HTTP=$(python3 - "$PORT" << 'EOF' 2>/dev/null
import socket, sys
s = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
s.sendall(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
data = b""
while chunk := s.recv(65536):
    data += chunk
sys.stdout.write(data.decode(errors="replace"))
EOF
) || HTTP=$(exec 3<>"/dev/tcp/127.0.0.1/$PORT" && printf 'GET /metrics HTTP/1.1\r\n\r\n' >&3 && cat <&3)
echo "$HTTP" | grep -q "200 OK" || fail "HTTP scrape: status line"
echo "$HTTP" | grep -q "version=0.0.4" || fail "HTTP scrape: Prometheus content type"

# SIGTERM: the daemon must drain and report it, exiting 0.
kill -TERM "$SERVE_PID"
DRAIN_OK=1
if wait "$SERVE_PID"; then DRAIN_OK=0; fi
[ "$DRAIN_OK" -eq 0 ] || fail "daemon exited non-zero on SIGTERM"
grep -q "drained cleanly" "$LOG" || fail "daemon never printed the drain summary"
SERVE_PID=""

echo "serve_smoke: PASS"
exit 0
