// Tests for CPU topology discovery (fixture sysfs trees) and the
// topology-aware pin strategies.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/topology.hpp"

namespace symspmv {
namespace {

namespace fs = std::filesystem;

/// Writes @p content to @p path, creating parent directories.
void put(const fs::path& path, const std::string& content) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << content << '\n';
    ASSERT_TRUE(out.good()) << path;
}

/// A scratch sysfs root unique to the running test.
fs::path scratch_root(const std::string& name) {
    const fs::path root = fs::path(::testing::TempDir()) / ("sysfs_" + name);
    fs::remove_all(root);
    fs::create_directories(root);
    return root;
}

/// Builds the canonical fixture: 2 sockets x 2 cores x 2 SMT = 8 logical
/// CPUs in Linux enumeration order (all first siblings, then the seconds),
/// one NUMA node per socket, a 32K/256K/8M cache hierarchy on cpu0.
fs::path make_two_socket_tree(const std::string& name) {
    const fs::path root = scratch_root(name);
    const fs::path cpu = root / "devices/system/cpu";
    const int pkg_of[] = {0, 0, 1, 1, 0, 0, 1, 1};
    const int core_of[] = {0, 1, 0, 1, 0, 1, 0, 1};
    for (int i = 0; i < 8; ++i) {
        const fs::path topo = cpu / ("cpu" + std::to_string(i)) / "topology";
        put(topo / "physical_package_id", std::to_string(pkg_of[i]));
        put(topo / "core_id", std::to_string(core_of[i]));
    }
    put(root / "devices/system/node/node0/cpulist", "0-1,4-5");
    put(root / "devices/system/node/node1/cpulist", "2-3,6-7");
    const fs::path cache = cpu / "cpu0/cache";
    put(cache / "index0/level", "1");
    put(cache / "index0/type", "Data");
    put(cache / "index0/size", "32K");
    put(cache / "index1/level", "1");
    put(cache / "index1/type", "Instruction");
    put(cache / "index1/size", "32K");
    put(cache / "index2/level", "2");
    put(cache / "index2/type", "Unified");
    put(cache / "index2/size", "256K");
    put(cache / "index3/level", "3");
    put(cache / "index3/type", "Unified");
    put(cache / "index3/size", "8192K");
    return root;
}

TEST(Topology, DiscoversTwoSocketFixtureTree) {
    const fs::path root = make_two_socket_tree("two_socket");
    const CpuTopology topo = discover_topology(root.string());
    EXPECT_TRUE(topo.from_sysfs);
    EXPECT_EQ(topo.logical_cpus(), 8);
    EXPECT_EQ(topo.sockets, 2);
    EXPECT_EQ(topo.nodes, 2);
    EXPECT_EQ(topo.smt, 2);
    EXPECT_EQ(topo.physical_cores(), 4);
    EXPECT_EQ(topo.summary(), "2s/2n/4c/2t");
    EXPECT_EQ(topo.l1d_bytes, 32u * 1024);
    EXPECT_EQ(topo.l2_bytes, 256u * 1024);
    EXPECT_EQ(topo.llc_bytes, 8192u * 1024);
    // cpus are sorted by id; cpu2 sits on socket 1 / node 1, and cpu4 is the
    // SMT sibling of cpu0 (same socket 0 / core 0, seen second).
    ASSERT_EQ(topo.cpus.size(), 8u);
    EXPECT_EQ(topo.cpus[2].socket, 1);
    EXPECT_EQ(topo.cpus[2].node, 1);
    EXPECT_EQ(topo.cpus[2].smt_rank, 0);
    EXPECT_EQ(topo.cpus[4].socket, 0);
    EXPECT_EQ(topo.cpus[4].core, 0);
    EXPECT_EQ(topo.cpus[4].smt_rank, 1);
}

TEST(Topology, MissingTreeFallsBackToFlat) {
    const CpuTopology topo = discover_topology("/nonexistent/sysfs/root");
    EXPECT_FALSE(topo.from_sysfs);
    EXPECT_GE(topo.logical_cpus(), 1);
    EXPECT_EQ(topo.sockets, 1);
    EXPECT_EQ(topo.nodes, 1);
    EXPECT_EQ(topo.smt, 1);
}

TEST(Topology, GarbageFilesAreSkippedNotMisparsed) {
    const fs::path root = scratch_root("garbage");
    const fs::path cpu = root / "devices/system/cpu";
    // cpu0 is fine; cpu1 has a non-numeric core id and must be skipped.
    put(cpu / "cpu0/topology/physical_package_id", "0");
    put(cpu / "cpu0/topology/core_id", "0");
    put(cpu / "cpu1/topology/physical_package_id", "0");
    put(cpu / "cpu1/topology/core_id", "banana");
    // A malformed node cpulist must not crash discovery or invent nodes.
    put(root / "devices/system/node/node0/cpulist", "0-");
    const CpuTopology topo = discover_topology(root.string());
    EXPECT_TRUE(topo.from_sysfs);
    EXPECT_EQ(topo.logical_cpus(), 1);
    EXPECT_EQ(topo.nodes, 1);
}

TEST(Topology, FakeTopologyMatchesRequestedShape) {
    const CpuTopology topo = fake_topology(2, 4, 2);
    EXPECT_EQ(topo.logical_cpus(), 16);
    EXPECT_EQ(topo.sockets, 2);
    EXPECT_EQ(topo.nodes, 2);
    EXPECT_EQ(topo.smt, 2);
    EXPECT_EQ(topo.physical_cores(), 8);
    EXPECT_EQ(topo.summary(), "2s/2n/8c/2t");
}

TEST(Topology, PinStrategyNamesRoundTrip) {
    for (PinStrategy s : {PinStrategy::kNone, PinStrategy::kCompact, PinStrategy::kScatter,
                          PinStrategy::kPerSocket}) {
        EXPECT_EQ(parse_pin_strategy(to_string(s)), s);
    }
    EXPECT_ANY_THROW(parse_pin_strategy("hexagonal"));
}

TEST(PinMap, CompactFillsCoresBeforeSiblingsAndSocketsInOrder) {
    // fake_topology(2, 2, 2) ids: rank0 = {s0c0:0, s0c1:1, s1c0:2, s1c1:3},
    // rank1 = {s0c0:4, s0c1:5, s1c0:6, s1c1:7}.
    const CpuTopology topo = fake_topology(2, 2, 2);
    EXPECT_EQ(pin_map(topo, 8, PinStrategy::kCompact),
              (std::vector<int>{0, 1, 4, 5, 2, 3, 6, 7}));
}

TEST(PinMap, ScatterAlternatesSockets) {
    const CpuTopology topo = fake_topology(2, 2, 2);
    EXPECT_EQ(pin_map(topo, 4, PinStrategy::kScatter), (std::vector<int>{0, 2, 1, 3}));
}

TEST(PinMap, NoneIsEmpty) {
    EXPECT_TRUE(pin_map(fake_topology(1, 4, 1), 4, PinStrategy::kNone).empty());
}

TEST(PinMap, WrapsWhenThreadsExceedCpus) {
    // The p=16-on-8-CPUs fix: the map wraps instead of binding to phantom
    // CPU ids the kernel would reject.
    const CpuTopology topo = flat_topology(2);
    EXPECT_EQ(pin_map(topo, 5, PinStrategy::kCompact), (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(PinMap, SocketOfWorkersGroupsPerSocketBlocks) {
    const CpuTopology topo = fake_topology(2, 2, 2);
    const auto map = pin_map(topo, 8, PinStrategy::kPerSocket);
    EXPECT_EQ(socket_of_workers(topo, map, 8),
              (std::vector<int>{0, 0, 0, 0, 1, 1, 1, 1}));
    // Unpinned workers all report socket 0 (the UMA degenerate case).
    EXPECT_EQ(socket_of_workers(topo, {}, 3), (std::vector<int>{0, 0, 0}));
}

}  // namespace
}  // namespace symspmv
