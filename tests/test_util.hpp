// Shared test helpers.  Every test that needs a deterministic input vector
// uses these instead of a per-file copy.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "core/types.hpp"

namespace symspmv::test {

/// Deterministic uniform(-1, 1) vector from a fixed seed.
inline std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> v(n);
    for (auto& e : v) e = dist(rng);
    return v;
}

inline std::vector<value_t> random_vector(index_t n, std::uint64_t seed) {
    return random_vector(static_cast<std::size_t>(n), seed);
}

/// Overload drawing from a caller-owned generator (for fuzzing loops that
/// thread one rng through many draws).
inline std::vector<value_t> random_vector(index_t n, std::mt19937_64& rng) {
    std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
    std::vector<value_t> v(static_cast<std::size_t>(n));
    for (auto& e : v) e = dist(rng);
    return v;
}

}  // namespace symspmv::test
