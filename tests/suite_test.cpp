// Tests for the Table I suite analogs.
#include <gtest/gtest.h>

#include <fstream>

#include "core/error.hpp"
#include "matrix/mmio.hpp"
#include "matrix/properties.hpp"
#include "matrix/suite.hpp"

namespace symspmv {
namespace {

TEST(Suite, HasTwelveEntriesInPaperOrder) {
    const auto& entries = gen::suite_entries();
    ASSERT_EQ(entries.size(), 12u);
    EXPECT_EQ(entries.front().name, "parabolic_fem");
    EXPECT_EQ(entries.back().name, "ldoor");
    EXPECT_EQ(entries[4].name, "G3_circuit");
    // Paper nnz counts carried through for scaling.
    EXPECT_EQ(entries.back().paper_nnz, 46522475);
}

TEST(Suite, UnknownNameThrows) {
    EXPECT_THROW(gen::generate_suite_matrix("not_a_matrix", 0.01), InvalidArgument);
}

TEST(Suite, GenerationIsDeterministic) {
    const Coo a = gen::generate_suite_matrix("consph", 0.01);
    const Coo b = gen::generate_suite_matrix("consph", 0.01);
    ASSERT_EQ(a.nnz(), b.nnz());
    EXPECT_EQ(a.entries()[0], b.entries()[0]);
    EXPECT_EQ(a.entries()[static_cast<std::size_t>(a.nnz()) - 1],
              b.entries()[static_cast<std::size_t>(b.nnz()) - 1]);
}

TEST(Suite, ScaleGrowsTheMatrix) {
    const Coo small = gen::generate_suite_matrix("hood", 0.005);
    const Coo big = gen::generate_suite_matrix("hood", 0.02);
    EXPECT_GT(big.rows(), small.rows());
    EXPECT_GT(big.nnz(), small.nnz());
}

class SuiteMatrices : public ::testing::TestWithParam<gen::SuiteEntry> {};

TEST_P(SuiteMatrices, AnalogIsSymmetricSpdWithSaneShape) {
    const auto& entry = GetParam();
    const Coo m = gen::generate_suite_matrix(entry, 0.01);
    ASSERT_TRUE(m.is_symmetric()) << entry.name;
    const MatrixProperties p = analyze(m);
    EXPECT_EQ(p.diag_nnz, p.rows) << entry.name;  // SPD analogs have full diagonals
    EXPECT_EQ(p.empty_rows, 0) << entry.name;
    // nnz/row should be in the right ballpark of the paper's figure
    // (generators are stochastic; allow a factor-of-2 band).  Density is
    // capped at rows/4 for matrices whose paper density is infeasible at
    // this scale (nd12k).
    const double paper_per_row =
        static_cast<double>(entry.paper_nnz) / static_cast<double>(entry.paper_rows);
    const double expected = std::min(paper_per_row, p.rows / 4.0);
    EXPECT_GT(p.nnz_per_row, expected / 2.2) << entry.name;
    EXPECT_LT(p.nnz_per_row, expected * 2.2) << entry.name;
}

TEST_P(SuiteMatrices, HighBandwidthClassesStayHighBandwidth) {
    const auto& entry = GetParam();
    const Coo m = gen::generate_suite_matrix(entry, 0.01);
    const MatrixProperties p = analyze(m);
    const double rel_bw = static_cast<double>(p.bandwidth) / p.rows;
    if (entry.cls == gen::StructureClass::kCircuit ||
        entry.cls == gen::StructureClass::kIrregular) {
        EXPECT_GT(rel_bw, 0.5) << entry.name;  // the §V.B corner cases
    }
    if (entry.cls == gen::StructureClass::kBlockFem && entry.name != "crankseg_2") {
        EXPECT_LT(rel_bw, 0.2) << entry.name;  // structural matrices are banded
    }
}

INSTANTIATE_TEST_SUITE_P(TableI, SuiteMatrices, ::testing::ValuesIn(gen::suite_entries()),
                         [](const ::testing::TestParamInfo<gen::SuiteEntry>& info) {
                             return info.param.name;
                         });

TEST(Suite, LoadOrGenerateFallsBackToGenerator) {
    const Coo m = gen::load_or_generate("nd12k", 0.01, "/nonexistent-dir");
    EXPECT_GT(m.nnz(), 0);
}

TEST(Suite, LoadOrGeneratePrefersMtxFile) {
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/nd12k.mtx";
    {
        std::ofstream out(path);
        out << "%%MatrixMarket matrix coordinate real symmetric\n"
            << "2 2 2\n1 1 3.0\n2 2 4.0\n";
    }
    const Coo m = gen::load_or_generate("nd12k", 0.01, dir);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.nnz(), 2);
}

}  // namespace
}  // namespace symspmv
