// Tests for the measurement framework and the STREAM probe.
#include <gtest/gtest.h>

#include <sstream>

#include "bench/harness.hpp"
#include "engine/registry.hpp"
#include "bench/streamprobe.hpp"
#include "matrix/generators.hpp"

namespace symspmv {
namespace {

TEST(Harness, MeasureProducesSaneNumbers) {
    const Coo m = gen::banded_random(1024, 64, 8.0, 3);
    ThreadPool pool(2);
    const KernelPtr kernel = make_kernel(KernelKind::kSssIndexing, m, pool);
    bench::MeasureOptions opts;
    opts.iterations = 8;
    opts.warmup = 1;
    const bench::Measurement meas = bench::measure(*kernel, opts);
    EXPECT_GT(meas.seconds_per_op, 0.0);
    EXPECT_GT(meas.gflops, 0.0);
    EXPECT_EQ(meas.per_op.count, 8u);
    EXPECT_GT(meas.phase_totals.multiply_seconds, 0.0);
}

TEST(Harness, MeasureIsDeterministicInShape) {
    const Coo m = gen::banded_random(256, 16, 6.0, 5);
    ThreadPool pool(1);
    const KernelPtr a = make_kernel(KernelKind::kCsr, m, pool);
    bench::MeasureOptions opts;
    opts.iterations = 4;
    const auto meas = bench::measure(*a, opts);
    EXPECT_LE(meas.per_op.min, meas.per_op.median);
    EXPECT_LE(meas.per_op.median, meas.per_op.max);
}

TEST(Harness, TablePrinterAlignsColumns) {
    std::ostringstream out;
    bench::TablePrinter table(out, {10, 8, 8});
    table.header({"matrix", "a", "b"});
    table.row({"m1", "1.00", "2.00"});
    const std::string text = out.str();
    EXPECT_NE(text.find("matrix"), std::string::npos);
    EXPECT_NE(text.find("m1"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Harness, FormatHelpers) {
    EXPECT_EQ(bench::TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(bench::TablePrinter::fmt(1.5, 0), "2");
    EXPECT_EQ(bench::TablePrinter::pct(0.436, 1), "43.6%");
}

TEST(StreamProbe, ReportsPositiveBandwidth) {
    ThreadPool pool(2);
    const bench::StreamResult r = bench::stream_probe(pool, 1u << 16, 2);
    EXPECT_GT(r.triad_gbs, 0.0);
    EXPECT_GT(r.copy_gbs, 0.0);
}

}  // namespace
}  // namespace symspmv
