// Tests for the runtime code-generation backend (the LLVM stand-in).
// All compilation-dependent tests skip gracefully when no C compiler is on
// PATH, mirroring the library's own fallback to the interpreter.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>
#include <vector>

#include "core/thread_pool.hpp"
#include "csx/jit.hpp"
#include "csx/kernels.hpp"
#include "matrix/generators.hpp"

namespace symspmv::csx {
namespace {

using symspmv::test::random_vector;

#define SKIP_WITHOUT_COMPILER()                                  \
    if (!JitModule::compiler_available()) {                      \
        GTEST_SKIP() << "no C compiler on PATH; JIT unavailable"; \
    }

TEST(JitSource, ContainsOneCasePerTableEntry) {
    const std::vector<Pattern> table = {
        {PatternType::kHorizontal, 1},
        {PatternType::kBlock, 3},
        {PatternType::kDiagonal, 2},
    };
    const std::string src = generate_kernel_source(table);
    EXPECT_NE(src.find("case 3:"), std::string::npos);
    EXPECT_NE(src.find("case 4:"), std::string::npos);
    EXPECT_NE(src.find("case 5:"), std::string::npos);
    EXPECT_EQ(src.find("case 6:"), std::string::npos);
    // Strides appear as folded literals, not table lookups.
    EXPECT_EQ(src.find("table"), std::string::npos);
}

TEST(JitSource, EmptyTableStillHasDeltaUnits) {
    const std::string src = generate_kernel_source({});
    EXPECT_NE(src.find("delta8"), std::string::npos);
    EXPECT_NE(src.find("delta16"), std::string::npos);
    EXPECT_NE(src.find("delta32"), std::string::npos);
    EXPECT_EQ(src.find("case 3:"), std::string::npos);
}

TEST(JitModule, CompilesAndLoads) {
    SKIP_WITHOUT_COMPILER();
    const std::vector<Pattern> table = {{PatternType::kHorizontal, 1}};
    const JitModule module(table);
    EXPECT_NE(module.fn(), nullptr);
    EXPECT_GT(module.compile_seconds(), 0.0);
}

class JitKernelMatrices : public ::testing::TestWithParam<int> {};

TEST_P(JitKernelMatrices, MatchesInterpreterExactly) {
    SKIP_WITHOUT_COMPILER();
    ThreadPool pool(GetParam());
    // block_fem exercises block + horizontal patterns; power_law the delta
    // fallbacks; poisson the diagonal family.
    const std::vector<Coo> matrices = {
        gen::make_spd(gen::block_fem(60, 3, 5.0, 0.6, 3)),
        gen::make_spd(gen::power_law_circuit(300, 4.0, 5)),
        gen::make_spd(gen::poisson2d(18, 18)),
    };
    for (const Coo& full : matrices) {
        const Csr csr(full);
        CsxMtKernel interp(csr, CsxConfig{}, pool);
        CsxJitKernel jit(csr, CsxConfig{}, pool);
        const auto x = random_vector(full.rows(), 11);
        std::vector<value_t> y_interp(static_cast<std::size_t>(full.rows()));
        std::vector<value_t> y_jit(y_interp.size());
        interp.spmv(x, y_interp);
        jit.spmv(x, y_jit);
        for (std::size_t i = 0; i < y_interp.size(); ++i) {
            // Same ctl stream, same arithmetic order: bitwise equality.
            EXPECT_DOUBLE_EQ(y_interp[i], y_jit[i]) << "row " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, JitKernelMatrices, ::testing::Values(1, 2, 4));

TEST(JitKernel, MatchesCooOracle) {
    SKIP_WITHOUT_COMPILER();
    ThreadPool pool(3);
    const Coo full = gen::make_spd(gen::banded_random(400, 30, 7.0, 7, 0.2));
    CsxJitKernel jit(Csr(full), CsxConfig{}, pool);
    const auto x = random_vector(full.rows(), 13);
    std::vector<value_t> y(static_cast<std::size_t>(full.rows()));
    std::vector<value_t> y_ref(y.size());
    jit.spmv(x, y);
    full.spmv(x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_NEAR(y_ref[i], y[i], 1e-9 * (1.0 + std::abs(y_ref[i])));
    }
}

TEST(JitSymKernel, MatchesInterpreterExactly) {
    SKIP_WITHOUT_COMPILER();
    ThreadPool pool(4);
    const std::vector<Coo> matrices = {
        gen::make_spd(gen::block_fem(60, 3, 5.0, 0.6, 7)),
        gen::make_spd(gen::banded_random(350, 25, 6.0, 9, 0.3)),
    };
    for (const Coo& full : matrices) {
        const Sss sss(full);
        CsxSymKernel interp(sss, CsxConfig{}, pool);
        CsxSymJitKernel jit(sss, CsxConfig{}, pool);
        const auto x = random_vector(full.rows(), 17);
        std::vector<value_t> y_interp(static_cast<std::size_t>(full.rows()));
        std::vector<value_t> y_jit(y_interp.size());
        interp.spmv(x, y_interp);
        jit.spmv(x, y_jit);
        for (std::size_t i = 0; i < y_interp.size(); ++i) {
            EXPECT_DOUBLE_EQ(y_interp[i], y_jit[i]) << "row " << i;
        }
        // Repeat: the shared locals must have been re-zeroed via the index.
        jit.spmv(x, y_jit);
        for (std::size_t i = 0; i < y_interp.size(); ++i) {
            EXPECT_DOUBLE_EQ(y_interp[i], y_jit[i]) << "repeat row " << i;
        }
    }
}

TEST(JitSymKernel, MatchesCooOracle) {
    SKIP_WITHOUT_COMPILER();
    ThreadPool pool(3);
    const Coo full = gen::make_spd(gen::power_law_circuit(400, 4.0, 19));
    CsxSymJitKernel jit(Sss(full), CsxConfig{}, pool);
    const auto x = random_vector(full.rows(), 23);
    std::vector<value_t> y(static_cast<std::size_t>(full.rows()));
    std::vector<value_t> y_ref(y.size());
    jit.spmv(x, y);
    full.spmv(x, y_ref);
    for (std::size_t i = 0; i < y.size(); ++i) {
        EXPECT_NEAR(y_ref[i], y[i], 1e-9 * (1.0 + std::abs(y_ref[i])));
    }
}

TEST(JitKernel, AccountsCompileTimeAsPreprocessing) {
    SKIP_WITHOUT_COMPILER();
    ThreadPool pool(2);
    const Coo full = gen::make_spd(gen::poisson2d(16, 16));
    CsxJitKernel jit(Csr(full), CsxConfig{}, pool);
    EXPECT_GT(jit.preprocess_seconds(), jit.matrix().preprocess_seconds());
}

}  // namespace
}  // namespace symspmv::csx
