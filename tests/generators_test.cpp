// Tests for the synthetic matrix generators: every output must be symmetric,
// diagonally dominant (hence SPD), deterministic per seed, and match the
// requested structural features.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"

namespace symspmv {
namespace {

void expect_spd_structure(const Coo& m) {
    ASSERT_TRUE(m.is_symmetric());
    // Strict diagonal dominance with positive diagonal.
    std::vector<value_t> diag(static_cast<std::size_t>(m.rows()), 0.0);
    std::vector<value_t> offsum(static_cast<std::size_t>(m.rows()), 0.0);
    for (const Triplet& t : m.entries()) {
        if (t.row == t.col) {
            diag[static_cast<std::size_t>(t.row)] = t.val;
        } else {
            offsum[static_cast<std::size_t>(t.row)] += std::abs(t.val);
        }
    }
    // Weak dominance everywhere with at least one strictly dominant row is
    // enough for SPD on the irreducible matrices the generators produce
    // (Poisson stencils are weakly dominant in the interior).
    int strict_rows = 0;
    for (index_t r = 0; r < m.rows(); ++r) {
        EXPECT_GE(diag[static_cast<std::size_t>(r)], offsum[static_cast<std::size_t>(r)])
            << "row " << r << " not diagonally dominant";
        if (diag[static_cast<std::size_t>(r)] > offsum[static_cast<std::size_t>(r)]) ++strict_rows;
    }
    EXPECT_GT(strict_rows, 0);
}

TEST(Generators, Poisson2dShape) {
    const Coo m = gen::poisson2d(8, 8);
    EXPECT_EQ(m.rows(), 64);
    // 5-point stencil: nnz = 5*n - 2*nx - 2*ny = 320 - 32.
    EXPECT_EQ(m.nnz(), 288);
    expect_spd_structure(m);
}

TEST(Generators, Poisson3dShape) {
    const Coo m = gen::poisson3d(4, 4, 4);
    EXPECT_EQ(m.rows(), 64);
    expect_spd_structure(m);
    EXPECT_EQ(bandwidth(m), 16);  // nx*ny
}

TEST(Generators, BandedRandomIsSpdAndDeterministic) {
    const Coo a = gen::banded_random(300, 20, 8.0, 5);
    const Coo b = gen::banded_random(300, 20, 8.0, 5);
    expect_spd_structure(a);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (index_t i = 0; i < a.nnz(); ++i) {
        EXPECT_EQ(a.entries()[static_cast<std::size_t>(i)],
                  b.entries()[static_cast<std::size_t>(i)]);
    }
}

TEST(Generators, BandedRandomDifferentSeedsDiffer) {
    const Coo a = gen::banded_random(300, 20, 8.0, 5);
    const Coo b = gen::banded_random(300, 20, 8.0, 6);
    EXPECT_NE(a.nnz(), b.nnz());
}

TEST(Generators, BandedRandomHitsNnzTarget) {
    const Coo m = gen::banded_random(4096, 64, 12.0, 9);
    const double per_row = static_cast<double>(m.nnz()) / m.rows();
    EXPECT_NEAR(per_row, 12.0, 1.5);
}

TEST(Generators, BandedRandomRespectsBandWithoutScatter) {
    const Coo m = gen::banded_random(512, 10, 6.0, 2, 0.0);
    EXPECT_LE(bandwidth(m), 10);
}

TEST(Generators, BlockFemProducesDenseBlocks) {
    const Coo m = gen::block_fem(64, 6, 8.0, 0.1, 21);
    EXPECT_EQ(m.rows(), 64 * 6);
    expect_spd_structure(m);
    // Dense diagonal self-block: rows within one node couple to each other.
    // Check node 10: rows 60..65 all mutually connected.
    std::set<std::pair<index_t, index_t>> pat;
    for (const Triplet& t : m.entries()) pat.emplace(t.row, t.col);
    for (index_t a = 60; a < 66; ++a) {
        for (index_t b = 60; b < 66; ++b) {
            EXPECT_TRUE(pat.count({a, b})) << a << "," << b;
        }
    }
}

TEST(Generators, BlockFemNnzPerRowScalesWithDegreeAndBlock) {
    const Coo m = gen::block_fem(256, 6, 8.0, 0.05, 33);
    const double per_row = static_cast<double>(m.nnz()) / m.rows();
    // ~ (degree + 1) * block = 54; generous tolerance for the Poisson draw
    // and duplicate edges that merge.
    EXPECT_GT(per_row, 30.0);
    EXPECT_LT(per_row, 60.0);
}

TEST(Generators, PowerLawCircuitIsSpdWithHighBandwidth) {
    const Coo m = gen::power_law_circuit(2048, 4.8, 17);
    expect_spd_structure(m);
    EXPECT_GT(bandwidth(m), 1024);  // long-range hub links
    const double per_row = static_cast<double>(m.nnz()) / m.rows();
    EXPECT_GT(per_row, 3.0);
    EXPECT_LT(per_row, 8.0);
}

TEST(Generators, MakeSpdFixesDiagonal) {
    Coo m(3, 3);
    m.add(1, 0, -4.0);
    m.add(0, 1, -4.0);
    m.add(2, 1, 2.0);
    m.add(1, 2, 2.0);
    m.canonicalize();
    const Coo spd = gen::make_spd(m);
    expect_spd_structure(spd);
    // Diagonal = |offdiag| row sum + 1.
    for (const Triplet& t : spd.entries()) {
        if (t.row == 0 && t.col == 0) {
            EXPECT_DOUBLE_EQ(t.val, 5.0);
        }
        if (t.row == 1 && t.col == 1) {
            EXPECT_DOUBLE_EQ(t.val, 7.0);
        }
    }
}

TEST(Generators, RejectBadParameters) {
    EXPECT_THROW(gen::poisson2d(0, 4), InternalError);
    EXPECT_THROW(gen::banded_random(8, 0, 4.0, 1), InternalError);
    EXPECT_THROW(gen::banded_random(8, 4, 4.0, 1, 1.5), InternalError);
    EXPECT_THROW(gen::block_fem(16, 3, 4.0, 0.0, 1), InternalError);
    EXPECT_THROW(gen::power_law_circuit(2, 3.0, 1), InternalError);
}

}  // namespace
}  // namespace symspmv
