// Robustness fuzz for the Matrix Market parser: random mutations of a
// valid file must either parse (if still valid) or throw ParseError /
// InvalidArgument — never crash, hang or silently return garbage shape.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/error.hpp"
#include "matrix/generators.hpp"
#include "matrix/mmio.hpp"

namespace symspmv {
namespace {

std::string valid_file() {
    const Coo coo = gen::make_spd(gen::poisson2d(6, 6));
    std::ostringstream os;
    write_matrix_market(os, coo, /*as_symmetric=*/true);
    return os.str();
}

/// Parses @p text expecting either success or a library exception.
void expect_graceful(const std::string& text) {
    std::istringstream is(text);
    try {
        const Coo coo = read_matrix_market(is);
        // Parsed: the shape must at least be non-negative and consistent.
        EXPECT_GE(coo.rows(), 0);
        EXPECT_GE(coo.cols(), 0);
        for (const Triplet& t : coo.entries()) {
            EXPECT_GE(t.row, 0);
            EXPECT_LT(t.row, coo.rows());
            EXPECT_GE(t.col, 0);
            EXPECT_LT(t.col, coo.cols());
        }
    } catch (const ParseError&) {
    } catch (const InvalidArgument&) {
    } catch (const InternalError&) {
        // Internal invariants firing on hostile input are acceptable too —
        // the contract is "throws, never crashes".
    }
}

class MmioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MmioFuzz, ByteMutationsNeverCrash) {
    const std::string base = valid_file();
    std::mt19937_64 rng(GetParam());
    for (int round = 0; round < 200; ++round) {
        std::string mutated = base;
        const int edits = 1 + static_cast<int>(rng() % 4);
        for (int e = 0; e < edits; ++e) {
            const std::size_t at = rng() % mutated.size();
            switch (rng() % 3) {
                case 0:  // flip a byte
                    mutated[at] = static_cast<char>(rng() % 256);
                    break;
                case 1:  // delete a byte
                    mutated.erase(at, 1);
                    break;
                default:  // duplicate a byte
                    mutated.insert(at, 1, mutated[at]);
                    break;
            }
            if (mutated.empty()) break;
        }
        expect_graceful(mutated);
    }
}

TEST_P(MmioFuzz, TruncationsNeverCrash) {
    const std::string base = valid_file();
    std::mt19937_64 rng(GetParam() ^ 0xABCD);
    for (int round = 0; round < 50; ++round) {
        expect_graceful(base.substr(0, rng() % base.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MmioFuzz, ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST(MmioFuzz, HostileHeaders) {
    for (const char* text : {
             "%%MatrixMarket matrix coordinate real general\n-1 4 2\n1 1 1.0\n",
             "%%MatrixMarket matrix coordinate real general\n4 4 2\n0 1 1.0\n",
             "%%MatrixMarket matrix coordinate real general\n4 4 2\n5 1 1.0\n",
             "%%MatrixMarket matrix coordinate real general\n4 4 999999999\n1 1 1.0\n",
             "%%MatrixMarket matrix coordinate real general\n99999999999999999999 4 1\n1 1 1\n",
             "%%MatrixMarket matrix coordinate real general\n4 4 1\n1 1 nonsense\n",
         }) {
        expect_graceful(text);
    }
}

}  // namespace
}  // namespace symspmv
