// Tests for the roofline model (§I's flop:byte argument made executable).
#include <gtest/gtest.h>

#include "engine/registry.hpp"
#include "bench/roofline.hpp"
#include "core/thread_pool.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"

namespace symspmv::bench {
namespace {

TEST(RooflineModel, AttainableIsMinOfCeilings) {
    RooflineModel m;
    m.peak_gflops = 100.0;
    m.bandwidth_gbs = 50.0;
    EXPECT_DOUBLE_EQ(m.attainable_gflops(0.1), 5.0);    // memory-bound
    EXPECT_DOUBLE_EQ(m.attainable_gflops(2.0), 100.0);  // compute-bound
    EXPECT_DOUBLE_EQ(m.attainable_gflops(m.ridge_intensity()), 100.0);
    EXPECT_DOUBLE_EQ(m.ridge_intensity(), 2.0);
}

TEST(RooflineModel, ProbesReturnPositiveCeilings) {
    ThreadPool pool(2);
    const RooflineModel m = probe_roofline(pool);
    EXPECT_GT(m.peak_gflops, 0.0);
    EXPECT_GT(m.bandwidth_gbs, 0.0);
    EXPECT_GT(m.ridge_intensity(), 0.0);
}

TEST(OperationalIntensity, MatchesCsrSizeFormula) {
    ThreadPool pool(1);
    const Coo full = gen::make_spd(gen::poisson2d(20, 20));
    const KernelPtr csr = make_kernel(KernelKind::kCsr, full, pool);
    // CSR: 2*nnz flops over (12*nnz + 4*(N+1)) matrix bytes + 16*N vectors.
    const double expected =
        2.0 * static_cast<double>(full.nnz()) /
        (12.0 * static_cast<double>(full.nnz()) + 4.0 * (full.rows() + 1) + 16.0 * full.rows());
    EXPECT_DOUBLE_EQ(operational_intensity(*csr), expected);
}

TEST(OperationalIntensity, SpmvIsDeepInTheMemoryBoundRegion) {
    // The paper's premise: every format's intensity is << 1 flop/byte.
    ThreadPool pool(2);
    const Coo full = gen::make_spd(gen::banded_random(400, 20, 6.0, 3));
    for (KernelKind kind : {KernelKind::kCsr, KernelKind::kSssIndexing, KernelKind::kCsxSym}) {
        const KernelPtr kernel = make_kernel(kind, full, pool);
        EXPECT_LT(operational_intensity(*kernel), 0.5) << to_string(kind);
        EXPECT_GT(operational_intensity(*kernel), 0.05) << to_string(kind);
    }
}

TEST(OperationalIntensity, SymmetricFormatsRaiseIntensity) {
    // Halving the matrix bytes must raise flops/byte — the speedup driver.
    ThreadPool pool(2);
    const Coo full = gen::make_spd(gen::block_fem(120, 3, 5.0, 0.6, 5));
    const KernelPtr csr = make_kernel(KernelKind::kCsr, full, pool);
    const KernelPtr sss = make_kernel(KernelKind::kSssIndexing, full, pool);
    const KernelPtr csxsym = make_kernel(KernelKind::kCsxSym, full, pool);
    EXPECT_GT(operational_intensity(*sss), operational_intensity(*csr));
    EXPECT_GT(operational_intensity(*csxsym), operational_intensity(*sss));
}

}  // namespace
}  // namespace symspmv::bench
