// Tests for the CSX encoder, ctl walker, and the CSX/CSX-Sym matrices.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <random>
#include <vector>

#include "csx/builder.hpp"
#include "csx/csx_matrix.hpp"
#include "csx/csx_sym.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/sss.hpp"

namespace symspmv::csx {
namespace {

using symspmv::test::random_vector;

/// Decodes an encoded partition back into triplets via walk_ctl.
std::vector<Triplet> decode(const EncodedPartition& part, std::span<const Pattern> table) {
    std::vector<Triplet> out;
    std::size_t vpos = 0;
    walk_ctl(std::span<const std::uint8_t>(part.ctl), part.row_begin, table,
             [&](const UnitHeader& h, const std::uint8_t* body) {
                 auto emit = [&](index_t r, index_t c) {
                     out.push_back({r, c, part.values[vpos++]});
                 };
                 if (h.id <= 2) {
                     index_t c = h.col;
                     emit(h.row, c);
                     for (int k = 0; k < h.size - 1; ++k) {
                         if (h.id == 0) c += detail::read_fixed<std::uint8_t>(body, k);
                         if (h.id == 1) c += detail::read_fixed<std::uint16_t>(body, k);
                         if (h.id == 2) c += detail::read_fixed<std::uint32_t>(body, k);
                         emit(h.row, c);
                     }
                     return;
                 }
                 const Pattern& p = table[static_cast<std::size_t>(h.id - kFirstTableId)];
                 switch (p.type) {
                     case PatternType::kHorizontal:
                         for (int k = 0; k < h.size; ++k) emit(h.row, h.col + k * p.delta);
                         break;
                     case PatternType::kVertical:
                         for (int k = 0; k < h.size; ++k) emit(h.row + k * p.delta, h.col);
                         break;
                     case PatternType::kDiagonal:
                         for (int k = 0; k < h.size; ++k)
                             emit(h.row + k * p.delta, h.col + k * p.delta);
                         break;
                     case PatternType::kAntiDiagonal:
                         for (int k = 0; k < h.size; ++k)
                             emit(h.row + k * p.delta, h.col - k * p.delta);
                         break;
                     case PatternType::kBlock: {
                         const int cols = h.size / static_cast<int>(p.delta);
                         for (int b = 0; b < cols; ++b) {
                             for (index_t a = 0; a < p.delta; ++a) {
                                 emit(h.row + a, h.col + b);
                             }
                         }
                         break;
                     }
                     default:
                         FAIL() << "delta pattern in table";
                 }
             });
    return out;
}

/// Round-trip invariant: encode then decode reproduces the element set.
void expect_roundtrip(const Coo& m, const CsxConfig& cfg, index_t boundary = -1) {
    const std::vector<Triplet> elems(m.entries().begin(), m.entries().end());
    Detector d(elems, cfg, boundary);
    const auto table = d.select_patterns();
    const auto part = encode_partition(elems, 0, m.rows(), table, cfg, boundary);
    auto decoded = decode(part, table);
    ASSERT_EQ(decoded.size(), elems.size());
    std::sort(decoded.begin(), decoded.end(),
              [](const Triplet& a, const Triplet& b) { return triplet_rowmajor_less(a, b); });
    for (std::size_t i = 0; i < elems.size(); ++i) {
        EXPECT_EQ(decoded[i], elems[i]) << "element " << i;
    }
}

TEST(Encoder, RoundTripStencil) { expect_roundtrip(gen::poisson2d(20, 20), CsxConfig{}); }

TEST(Encoder, RoundTripBlockFem) {
    expect_roundtrip(gen::block_fem(24, 3, 5.0, 0.25, 3), CsxConfig{});
}

TEST(Encoder, RoundTripScattered) {
    expect_roundtrip(gen::banded_random(300, 299, 7.0, 5, 1.0), CsxConfig{});
}

TEST(Encoder, RoundTripWithBoundary) {
    const Coo m = gen::block_fem(24, 3, 5.0, 0.25, 7);
    expect_roundtrip(m.lower().strict_lower(), CsxConfig{}, /*boundary=*/m.rows() / 2);
}

TEST(Encoder, RoundTripWideColumns) {
    // Columns beyond 2^16 force delta32 bodies.
    Coo m(3, 200000);
    m.add(0, 0, 1.0);
    m.add(0, 70000, 2.0);
    m.add(0, 140001, 3.0);
    m.add(1, 199999, 4.0);
    m.canonicalize();
    expect_roundtrip(m, CsxConfig{});
}

TEST(Encoder, EmptyPartition) {
    const std::vector<Triplet> none;
    const auto part = encode_partition(none, 0, 10, {}, CsxConfig{});
    EXPECT_TRUE(part.ctl.empty());
    EXPECT_TRUE(part.values.empty());
}

TEST(Encoder, CompressesStencilBelowCsr) {
    const Coo m = gen::poisson2d(64, 64);
    const Csr csr(m);
    CsxConfig cfg;
    const CsxMatrix csx(csr, cfg, 1);
    EXPECT_LT(csx.size_bytes(), csr.size_bytes());
    // CSX discards colind (4 bytes/nnz) for encoded elements; a regular
    // stencil should compress well below 12 bytes/nnz.
    const double bytes_per_nnz = static_cast<double>(csx.size_bytes()) / csr.nnz();
    EXPECT_LT(bytes_per_nnz, 10.0);
}

TEST(CsxMatrixTest, SpmvMatchesCsr) {
    for (std::uint64_t seed : {1, 2, 3}) {
        const Coo m = gen::banded_random(257, 60, 9.0, seed, 0.3);
        const Csr csr(m);
        const CsxMatrix csx(csr, CsxConfig{}, 3);
        const auto x = random_vector(257, seed + 50);
        std::vector<value_t> y_ref(257), y(257, -5.0);
        csr.spmv(x, y_ref);
        for (int pid = 0; pid < csx.partitions(); ++pid) csx.spmv_partition(pid, x, y);
        for (int i = 0; i < 257; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12) << "seed " << seed;
    }
}

TEST(CsxMatrixTest, SpmvMatchesCsrOnBlockMatrix) {
    const Coo m = gen::block_fem(40, 6, 6.0, 0.2, 9);
    const Csr csr(m);
    const CsxMatrix csx(csr, CsxConfig{}, 4);
    const auto n = static_cast<std::size_t>(m.rows());
    const auto x = random_vector(n, 77);
    std::vector<value_t> y_ref(n), y(n);
    csr.spmv(x, y_ref);
    for (int pid = 0; pid < csx.partitions(); ++pid) csx.spmv_partition(pid, x, y);
    for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-11);
    // The block structure must actually be detected.
    bool has_block = false;
    for (const auto& [pattern, count] : csx.coverage()) {
        if (pattern.type == PatternType::kBlock && count > 0) has_block = true;
    }
    EXPECT_TRUE(has_block);
}

TEST(CsxMatrixTest, PreprocessTimeIsRecorded) {
    const Coo m = gen::poisson2d(32, 32);
    const CsxMatrix csx(Csr(m), CsxConfig{}, 2);
    EXPECT_GT(csx.preprocess_seconds(), 0.0);
}

TEST(CsxSymMatrixTest, SpmvMatchesCsr) {
    for (int parts : {1, 2, 4, 7}) {
        const Coo m = gen::banded_random(311, 80, 10.0, 23, 0.4);
        const Csr csr(m);
        const Sss sss(m);
        const CsxSymMatrix csx(sss, CsxConfig{}, parts);
        const auto x = random_vector(311, 91);
        std::vector<value_t> y_ref(311), y(311);
        csr.spmv(x, y_ref);
        // Serial emulation of the multithreaded flow: locals then reduce.
        std::vector<std::vector<value_t>> locals(static_cast<std::size_t>(parts));
        for (int pid = 0; pid < parts; ++pid) {
            locals[static_cast<std::size_t>(pid)].assign(
                static_cast<std::size_t>(csx.partition_rows(pid).begin), 0.0);
            csx.spmv_partition(pid, x, y, locals[static_cast<std::size_t>(pid)]);
        }
        for (int pid = 1; pid < parts; ++pid) {
            const auto& local = locals[static_cast<std::size_t>(pid)];
            for (std::size_t r = 0; r < local.size(); ++r) {
                y[r] += local[r];
            }
        }
        for (int i = 0; i < 311; ++i) {
            ASSERT_NEAR(y[i], y_ref[i], 1e-11) << "parts=" << parts << " row=" << i;
        }
    }
}

TEST(CsxSymMatrixTest, SizeIsNearHalfOfCsx) {
    const Coo m = gen::block_fem(60, 6, 8.0, 0.1, 13);
    const Csr csr(m);
    const CsxMatrix csx(csr, CsxConfig{}, 2);
    const CsxSymMatrix sym(Sss(m), CsxConfig{}, 2);
    const double ratio = static_cast<double>(sym.size_bytes()) / csx.size_bytes();
    EXPECT_LT(ratio, 0.75);
}

TEST(CsxSymMatrixTest, MixedUnitsRespectBoundary) {
    // Every encoded unit must have all columns on one side of the partition
    // start (§IV.B): decode each partition and check.
    const Coo m = gen::banded_random(301, 150, 12.0, 31, 0.5);
    const Sss sss(m);
    const CsxSymMatrix csx(sss, CsxConfig{}, 4);
    for (int pid = 0; pid < csx.partitions(); ++pid) {
        const auto& part = csx.partition(pid);
        const index_t start = csx.partition_rows(pid).begin;
        std::size_t vpos = 0;
        walk_ctl(std::span<const std::uint8_t>(part.ctl), part.row_begin, csx.table(),
                 [&](const UnitHeader& h, const std::uint8_t* body) {
                     // Recover the unit's column span.
                     index_t min_col = h.col;
                     index_t max_col = h.col;
                     if (h.id <= 2) {
                         index_t c = h.col;
                         for (int k = 0; k < h.size - 1; ++k) {
                             if (h.id == 0) c += detail::read_fixed<std::uint8_t>(body, k);
                             if (h.id == 1) c += detail::read_fixed<std::uint16_t>(body, k);
                             if (h.id == 2) c += detail::read_fixed<std::uint32_t>(body, k);
                         }
                         max_col = c;
                     } else {
                         const Pattern& p =
                             csx.table()[static_cast<std::size_t>(h.id - kFirstTableId)];
                         switch (p.type) {
                             case PatternType::kHorizontal:
                                 max_col = h.col + (h.size - 1) * p.delta;
                                 break;
                             case PatternType::kDiagonal:
                                 max_col = h.col + (h.size - 1) * p.delta;
                                 break;
                             case PatternType::kAntiDiagonal:
                                 min_col = h.col - (h.size - 1) * p.delta;
                                 break;
                             case PatternType::kBlock:
                                 max_col = h.col + h.size / static_cast<int>(p.delta) - 1;
                                 break;
                             default:
                                 break;
                         }
                     }
                     vpos += static_cast<std::size_t>(h.size);
                     EXPECT_EQ(min_col < start, max_col < start)
                         << "unit spans the boundary in partition " << pid;
                 });
        EXPECT_EQ(vpos, part.values.size());
    }
}

TEST(WalkCtl, RejectsCorruptStreams) {
    // A flags byte pointing at a table entry that does not exist.
    std::vector<std::uint8_t> ctl = {kFirstTableId, 1, 0};
    EXPECT_THROW(
        walk_ctl(std::span<const std::uint8_t>(ctl), 0, std::span<const Pattern>{},
                 [](const UnitHeader&, const std::uint8_t*) {}),
        InternalError);
}

}  // namespace
}  // namespace symspmv::csx
