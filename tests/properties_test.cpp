// Tests for matrix structural properties.
#include <gtest/gtest.h>

#include "matrix/generators.hpp"
#include "matrix/properties.hpp"

namespace symspmv {
namespace {

TEST(Properties, BandwidthOfTridiagonal) {
    Coo m(4, 4);
    for (index_t i = 0; i < 4; ++i) m.add(i, i, 2.0);
    for (index_t i = 1; i < 4; ++i) {
        m.add(i, i - 1, -1.0);
        m.add(i - 1, i, -1.0);
    }
    m.canonicalize();
    EXPECT_EQ(bandwidth(m), 1);
    const MatrixProperties p = analyze(m);
    EXPECT_EQ(p.bandwidth, 1);
    EXPECT_EQ(p.nnz, 10);
    EXPECT_EQ(p.diag_nnz, 4);
    EXPECT_TRUE(p.numerically_symmetric);
    EXPECT_TRUE(p.structurally_symmetric);
}

TEST(Properties, BandwidthOfArrowMatrix) {
    Coo m(6, 6);
    for (index_t i = 0; i < 6; ++i) m.add(i, i, 1.0);
    m.add(5, 0, 1.0);
    m.add(0, 5, 1.0);
    m.canonicalize();
    EXPECT_EQ(bandwidth(m), 5);
}

TEST(Properties, RowStatistics) {
    Coo m(4, 4);
    m.add(0, 0, 1.0);
    m.add(0, 1, 1.0);
    m.add(0, 2, 1.0);
    m.add(2, 2, 1.0);
    m.canonicalize();
    const MatrixProperties p = analyze(m);
    EXPECT_EQ(p.max_row_nnz, 3);
    EXPECT_EQ(p.min_row_nnz, 0);
    EXPECT_EQ(p.empty_rows, 2);
    EXPECT_DOUBLE_EQ(p.nnz_per_row, 1.0);
    EXPECT_DOUBLE_EQ(p.density, 4.0 / 16.0);
}

TEST(Properties, StructurallyButNotNumericallySymmetric) {
    Coo m(2, 2);
    m.add(0, 1, 1.0);
    m.add(1, 0, 2.0);
    m.canonicalize();
    const MatrixProperties p = analyze(m);
    EXPECT_TRUE(p.structurally_symmetric);
    EXPECT_FALSE(p.numerically_symmetric);
}

TEST(Properties, PoissonGridBandwidthEqualsNx) {
    const Coo m = gen::poisson2d(17, 9);
    EXPECT_EQ(bandwidth(m), 17);
    const MatrixProperties p = analyze(m);
    EXPECT_TRUE(p.numerically_symmetric);
    EXPECT_EQ(p.empty_rows, 0);
}

TEST(Properties, ScatterFractionRaisesBandwidth) {
    const Coo banded = gen::banded_random(1024, 16, 8.0, 11, 0.0);
    const Coo scattered = gen::banded_random(1024, 16, 8.0, 11, 0.8);
    EXPECT_LE(bandwidth(banded), 16);
    EXPECT_GT(bandwidth(scattered), 256);
}

TEST(Properties, AvgBandwidthIsBounded) {
    const Coo m = gen::banded_random(256, 8, 6.0, 3);
    const MatrixProperties p = analyze(m);
    EXPECT_GE(p.avg_bandwidth, 0.0);
    EXPECT_LE(p.avg_bandwidth, static_cast<double>(p.bandwidth));
}

}  // namespace
}  // namespace symspmv
