// Cross-format integration sweep: every registered kernel x representative
// suite matrices x thread counts, checked against the COO oracle, plus
// structural edge cases and the permutation-invariance property
// K(P A P^T)(P x) == P (A x) that the §V.D reordering study relies on.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "engine/registry.hpp"
#include "core/thread_pool.hpp"
#include "matrix/generators.hpp"
#include "matrix/suite.hpp"
#include "reorder/permute.hpp"
#include "reorder/rcm.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

void expect_near_vectors(std::span<const value_t> expected, std::span<const value_t> actual,
                         double tol = 1e-9) {
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_NEAR(expected[i], actual[i], tol * (1.0 + std::abs(expected[i]))) << "at " << i;
    }
}

/// Suite matrices are expensive to generate; share them across the sweep.
const Coo& cached_matrix(const std::string& name) {
    static std::map<std::string, Coo> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache.emplace(name, gen::generate_suite_matrix(name, 0.004)).first;
    }
    return it->second;
}

/// Representative structural classes: stencil, irregular high-bandwidth,
/// block-FEM, circuit, dense-rows (one per StructureClass of Table I).
const std::vector<std::string>& sweep_matrices() {
    static const std::vector<std::string> names = {
        "parabolic_fem", "offshore", "bmw7st_1", "G3_circuit",
        "nd12k",         "ldoor",    "hood",     "crankseg_2",
    };
    return names;
}

using SweepParam = std::tuple<KernelKind, std::string>;

class KernelMatrixSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(KernelMatrixSweep, MatchesOracleAcrossThreadCounts) {
    const auto [kind, name] = GetParam();
    const Coo& full = cached_matrix(name);
    const auto x = random_vector(full.rows(), std::hash<std::string>{}(name));
    std::vector<value_t> y_ref(static_cast<std::size_t>(full.rows()));
    full.spmv(x, y_ref);
    for (int threads : {1, 3, 8}) {
        ThreadPool pool(threads);
        const KernelPtr kernel = make_kernel(kind, full, pool);
        EXPECT_EQ(kernel->rows(), full.rows());
        EXPECT_EQ(kernel->nnz(), full.nnz());
        std::vector<value_t> y(static_cast<std::size_t>(full.rows()));
        kernel->spmv(x, y);
        expect_near_vectors(y_ref, y);
    }
}

std::vector<SweepParam> sweep_params() {
    std::vector<SweepParam> out;
    for (KernelKind kind : all_kernel_kinds()) {
        for (const std::string& name : sweep_matrices()) out.emplace_back(kind, name);
    }
    return out;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
    std::string s = std::string(to_string(std::get<0>(info.param))) + "_" +
                    std::get<1>(info.param);
    for (char& c : s) {
        if (c == '-') c = '_';
    }
    return s;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelMatrixSweep, ::testing::ValuesIn(sweep_params()),
                         sweep_name);

class KernelEdgeCases : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelEdgeCases, PureDiagonalMatrix) {
    Coo coo(33, 33);
    for (index_t i = 0; i < 33; ++i) coo.add(i, i, static_cast<value_t>(i + 1));
    coo.canonicalize();
    ThreadPool pool(4);
    const KernelPtr kernel = make_kernel(GetParam(), coo, pool);
    const auto x = random_vector(33, 7);
    std::vector<value_t> y(33);
    kernel->spmv(x, y);
    for (index_t i = 0; i < 33; ++i) {
        EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                    static_cast<value_t>(i + 1) * x[static_cast<std::size_t>(i)], 1e-12);
    }
}

TEST_P(KernelEdgeCases, OneByOneMatrix) {
    Coo coo(1, 1);
    coo.add(0, 0, 3.0);
    coo.canonicalize();
    ThreadPool pool(2);
    const KernelPtr kernel = make_kernel(GetParam(), coo, pool);
    const std::vector<value_t> x = {2.0};
    std::vector<value_t> y(1);
    kernel->spmv(x, y);
    EXPECT_DOUBLE_EQ(y[0], 6.0);
}

TEST_P(KernelEdgeCases, MoreThreadsThanRows) {
    const Coo coo = gen::make_spd(gen::poisson2d(3, 2));  // 6 rows
    ThreadPool pool(8);
    const KernelPtr kernel = make_kernel(GetParam(), coo, pool);
    const auto x = random_vector(coo.rows(), 9);
    std::vector<value_t> y(static_cast<std::size_t>(coo.rows()));
    std::vector<value_t> y_ref(y.size());
    kernel->spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST_P(KernelEdgeCases, ArrowheadMatrix) {
    // One dense first row/column: the worst case for row partitioning and
    // the local-vector conflict index (every thread conflicts on row 0).
    const index_t n = 200;
    Coo coo(n, n);
    for (index_t i = 0; i < n; ++i) coo.add(i, i, 100.0);
    for (index_t i = 1; i < n; ++i) {
        coo.add(i, 0, 1.0);
        coo.add(0, i, 1.0);
    }
    coo.canonicalize();
    ThreadPool pool(6);
    const KernelPtr kernel = make_kernel(GetParam(), coo, pool);
    const auto x = random_vector(n, 11);
    std::vector<value_t> y(static_cast<std::size_t>(n));
    std::vector<value_t> y_ref(y.size());
    kernel->spmv(x, y);
    coo.spmv(x, y_ref);
    expect_near_vectors(y_ref, y);
}

TEST_P(KernelEdgeCases, RejectsMismatchedVectorSizes) {
    const Coo coo = gen::make_spd(gen::poisson2d(6, 6));  // 36 rows
    ThreadPool pool(2);
    const KernelPtr kernel = make_kernel(GetParam(), coo, pool);
    std::vector<value_t> x(36, 1.0);
    std::vector<value_t> y_short(35);
    std::vector<value_t> x_short(35, 1.0);
    std::vector<value_t> y(36);
    EXPECT_ANY_THROW(kernel->spmv(x, y_short));
    EXPECT_ANY_THROW(kernel->spmv(x_short, y));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelEdgeCases, ::testing::ValuesIn(all_kernel_kinds()),
                         [](const auto& info) {
                             std::string s(to_string(info.param));
                             for (char& c : s) {
                                 if (c == '-') c = '_';
                             }
                             return s;
                         });

class PermutationInvariance : public ::testing::TestWithParam<KernelKind> {};

TEST_P(PermutationInvariance, RcmPermutedKernelComputesPermutedProduct) {
    const Coo& full = cached_matrix("bmwcra_1");
    const auto perm = rcm_permutation(full);
    const Coo permuted = permute_symmetric(full, perm);
    ThreadPool pool(4);
    const KernelPtr plain = make_kernel(GetParam(), full, pool);
    const KernelPtr reordered = make_kernel(GetParam(), permuted, pool);

    const auto x = random_vector(full.rows(), 13);
    std::vector<value_t> y(static_cast<std::size_t>(full.rows()));
    plain->spmv(x, y);

    const auto px = permute_vector(x, perm);
    std::vector<value_t> py(px.size());
    reordered->spmv(px, py);

    expect_near_vectors(permute_vector(y, perm), py);
}

TEST_P(PermutationInvariance, RandomPermutationToo) {
    const Coo& full = cached_matrix("thermal2");
    std::vector<index_t> perm(static_cast<std::size_t>(full.rows()));
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<index_t>(i);
    std::mt19937_64 rng(99);
    std::ranges::shuffle(perm, rng);
    const Coo permuted = permute_symmetric(full, perm);
    ThreadPool pool(3);
    const KernelPtr plain = make_kernel(GetParam(), full, pool);
    const KernelPtr reordered = make_kernel(GetParam(), permuted, pool);

    const auto x = random_vector(full.rows(), 17);
    std::vector<value_t> y(static_cast<std::size_t>(full.rows()));
    plain->spmv(x, y);
    const auto px = permute_vector(x, perm);
    std::vector<value_t> py(px.size());
    reordered->spmv(px, py);
    expect_near_vectors(permute_vector(y, perm), py);
}

INSTANTIATE_TEST_SUITE_P(SymmetricKernels, PermutationInvariance,
                         ::testing::Values(KernelKind::kCsr, KernelKind::kSssIndexing,
                                           KernelKind::kCsxSym, KernelKind::kCsbSym,
                                           KernelKind::kSssColor),
                         [](const auto& info) {
                             std::string s(to_string(info.param));
                             for (char& c : s) {
                                 if (c == '-') c = '_';
                             }
                             return s;
                         });

}  // namespace
}  // namespace symspmv
