// Tests for the Conjugate Gradient solver (Alg. 1).
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <cmath>
#include <random>

#include "engine/registry.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "solver/cg.hpp"
#include "spmv/csr_kernels.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

double residual(const Coo& a, std::span<const value_t> x, std::span<const value_t> b) {
    std::vector<value_t> ax(b.size());
    a.spmv(x, ax);
    double acc = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) acc += (b[i] - ax[i]) * (b[i] - ax[i]);
    return std::sqrt(acc);
}

TEST(Cg, SolvesSmallSpdSystem) {
    const Coo a = gen::poisson2d(10, 10);
    ThreadPool pool(2);
    CsrSerialKernel kernel((Csr(a)));
    const auto b = random_vector(100, 3);
    cg::Options opts;
    opts.max_iterations = 500;
    opts.tolerance = 1e-10;
    const cg::Result res = cg::solve(kernel, pool, b, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(residual(a, res.x, b), 1e-7);
    EXPECT_GT(res.iterations, 0);
}

TEST(Cg, ConvergesFastOnDiagonallyDominantMatrix) {
    // Strong dominance => tight spectrum => few iterations.
    const Coo a = gen::banded_random(500, 30, 8.0, 7);
    ThreadPool pool(4);
    CsrSerialKernel kernel((Csr(a)));
    const auto b = random_vector(500, 11);
    cg::Options opts;
    opts.max_iterations = 200;
    const cg::Result res = cg::solve(kernel, pool, b, opts);
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.iterations, 60);
}

TEST(Cg, ZeroRhsReturnsImmediately) {
    const Coo a = gen::poisson2d(5, 5);
    ThreadPool pool(2);
    CsrSerialKernel kernel((Csr(a)));
    const std::vector<value_t> b(25, 0.0);
    const cg::Result res = cg::solve(kernel, pool, b, {});
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 0);
    for (value_t v : res.x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, InitialGuessIsUsed) {
    const Coo a = gen::poisson2d(8, 8);
    ThreadPool pool(2);
    CsrSerialKernel kernel((Csr(a)));
    const auto b = random_vector(64, 5);
    cg::Options opts;
    opts.tolerance = 1e-12;
    opts.max_iterations = 300;
    const cg::Result cold = cg::solve(kernel, pool, b, opts);
    ASSERT_TRUE(cold.converged);
    // Restarting from the solution must converge in zero iterations.
    const cg::Result warm = cg::solve(kernel, pool, b, cold.x, opts);
    EXPECT_TRUE(warm.converged);
    EXPECT_EQ(warm.iterations, 0);
}

TEST(Cg, IterationCapIsHonored) {
    const Coo a = gen::poisson2d(30, 30);
    ThreadPool pool(2);
    CsrSerialKernel kernel((Csr(a)));
    const auto b = random_vector(900, 9);
    cg::Options opts;
    opts.max_iterations = 3;
    opts.tolerance = 1e-14;
    const cg::Result res = cg::solve(kernel, pool, b, opts);
    EXPECT_FALSE(res.converged);
    EXPECT_EQ(res.iterations, 3);
}

TEST(Cg, BreakdownAccountsAllPhases) {
    const Coo a = gen::banded_random(2000, 100, 10.0, 13);
    ThreadPool pool(4);
    const KernelPtr kernel = make_kernel(KernelKind::kSssIndexing, a, pool);
    const auto b = random_vector(2000, 21);
    cg::Options opts;
    opts.max_iterations = 30;
    const cg::Result res = cg::solve(*kernel, pool, b, opts);
    EXPECT_GT(res.breakdown.spmv_multiply_seconds, 0.0);
    EXPECT_GE(res.breakdown.spmv_reduction_seconds, 0.0);
    EXPECT_GT(res.breakdown.vector_ops_seconds, 0.0);
    EXPECT_GT(res.breakdown.total(), 0.0);
}

TEST(Cg, AllKernelsReachTheSameSolution) {
    const Coo a = gen::banded_random(600, 60, 9.0, 17, 0.2);
    ThreadPool pool(4);
    const auto b = random_vector(600, 31);
    cg::Options opts;
    opts.tolerance = 1e-10;
    opts.max_iterations = 300;
    std::vector<value_t> reference;
    for (KernelKind kind : figure_kernel_kinds()) {
        const KernelPtr kernel = make_kernel(kind, a, pool);
        const cg::Result res = cg::solve(*kernel, pool, b, opts);
        ASSERT_TRUE(res.converged) << to_string(kind);
        if (reference.empty()) {
            reference = res.x;
        } else {
            for (std::size_t i = 0; i < reference.size(); ++i) {
                ASSERT_NEAR(res.x[i], reference[i], 1e-6) << to_string(kind);
            }
        }
    }
}

TEST(Cg, RejectsIndefiniteMatrix) {
    // A matrix with a negative eigenvalue: CG's p.A.p check must fire.
    Coo bad(2, 2);
    bad.add(0, 0, 1.0);
    bad.add(1, 1, -1.0);
    bad.canonicalize();
    ThreadPool pool(1);
    CsrSerialKernel kernel((Csr(bad)));
    const std::vector<value_t> b = {0.0, 1.0};
    EXPECT_THROW(cg::solve(kernel, pool, b, {}), InternalError);
}

TEST(Cg, InputValidation) {
    const Coo a = gen::poisson2d(4, 4);
    ThreadPool pool(1);
    CsrSerialKernel kernel((Csr(a)));
    const std::vector<value_t> wrong(7, 1.0);
    EXPECT_THROW(cg::solve(kernel, pool, wrong, {}), InternalError);
}

}  // namespace
}  // namespace symspmv
