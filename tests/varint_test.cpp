// Tests for the ctl-stream variable-length integer coding.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/error.hpp"
#include "csx/varint.hpp"

namespace symspmv::csx {
namespace {

TEST(Varint, UnsignedRoundTrip) {
    const std::vector<std::uint64_t> cases = {
        0,          1,     127, 128, 300, 16383, 16384,
        0xFFFFFFFF, std::numeric_limits<std::uint64_t>::max()};
    for (std::uint64_t v : cases) {
        std::vector<std::uint8_t> buf;
        write_uvarint(buf, v);
        std::size_t pos = 0;
        EXPECT_EQ(read_uvarint(buf.data(), buf.size(), pos), v);
        EXPECT_EQ(pos, buf.size());
    }
}

TEST(Varint, UnsignedEncodingSizes) {
    std::vector<std::uint8_t> buf;
    write_uvarint(buf, 127);
    EXPECT_EQ(buf.size(), 1u);
    buf.clear();
    write_uvarint(buf, 128);
    EXPECT_EQ(buf.size(), 2u);
    buf.clear();
    write_uvarint(buf, 1ULL << 21);
    EXPECT_EQ(buf.size(), 4u);
}

TEST(Varint, SignedRoundTrip) {
    const std::vector<std::int64_t> cases = {
        0,        1,        -1, 63, -64, 64, -65, 1000000,
        -1000000, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()};
    for (std::int64_t v : cases) {
        std::vector<std::uint8_t> buf;
        write_svarint(buf, v);
        std::size_t pos = 0;
        EXPECT_EQ(read_svarint(buf.data(), buf.size(), pos), v);
        EXPECT_EQ(pos, buf.size());
    }
}

TEST(Varint, ZigzagMapping) {
    EXPECT_EQ(zigzag_encode(0), 0u);
    EXPECT_EQ(zigzag_encode(-1), 1u);
    EXPECT_EQ(zigzag_encode(1), 2u);
    EXPECT_EQ(zigzag_encode(-2), 3u);
    EXPECT_EQ(zigzag_decode(4), 2);
    EXPECT_EQ(zigzag_decode(3), -2);
}

TEST(Varint, SmallNegativesStaySingleByte) {
    // Unit-start column deltas are usually tiny in either direction; they
    // must not balloon the ctl stream.
    for (std::int64_t v = -63; v <= 63; ++v) {
        std::vector<std::uint8_t> buf;
        write_svarint(buf, v);
        EXPECT_EQ(buf.size(), 1u) << v;
    }
}

TEST(Varint, TruncatedStreamThrows) {
    std::vector<std::uint8_t> buf;
    write_uvarint(buf, 100000);
    buf.pop_back();
    std::size_t pos = 0;
    EXPECT_THROW(read_uvarint(buf.data(), buf.size(), pos), InternalError);
}

TEST(Varint, OverlongEncodingThrows) {
    const std::vector<std::uint8_t> bad(11, 0x80);  // never terminates in 64 bits
    std::size_t pos = 0;
    EXPECT_THROW(read_uvarint(bad.data(), bad.size(), pos), InternalError);
}

TEST(Varint, SequencesConcatenate) {
    std::vector<std::uint8_t> buf;
    write_uvarint(buf, 7);
    write_svarint(buf, -300);
    write_uvarint(buf, 1 << 20);
    std::size_t pos = 0;
    EXPECT_EQ(read_uvarint(buf.data(), buf.size(), pos), 7u);
    EXPECT_EQ(read_svarint(buf.data(), buf.size(), pos), -300);
    EXPECT_EQ(read_uvarint(buf.data(), buf.size(), pos), 1u << 20);
    EXPECT_EQ(pos, buf.size());
}

}  // namespace
}  // namespace symspmv::csx
