// Tests for the .smx binary matrix cache.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/atomic_file.hpp"
#include "core/error.hpp"
#include "matrix/binio.hpp"
#include "matrix/generators.hpp"

namespace symspmv {
namespace {

TEST(BinIo, RoundTripsExactly) {
    const Coo original = gen::make_spd(gen::banded_random(300, 20, 6.0, 3, 0.3));
    std::stringstream buf;
    write_binary(buf, original);
    const Coo loaded = read_binary(buf);
    ASSERT_EQ(loaded.rows(), original.rows());
    ASSERT_EQ(loaded.nnz(), original.nnz());
    for (index_t k = 0; k < original.nnz(); ++k) {
        EXPECT_EQ(loaded.entries()[static_cast<std::size_t>(k)],
                  original.entries()[static_cast<std::size_t>(k)]);  // bitwise values too
    }
}

TEST(BinIo, EmptyMatrixRoundTrips) {
    const Coo original(17, 9);
    std::stringstream buf;
    write_binary(buf, original);
    const Coo loaded = read_binary(buf);
    EXPECT_EQ(loaded.rows(), 17);
    EXPECT_EQ(loaded.cols(), 9);
    EXPECT_EQ(loaded.nnz(), 0);
}

TEST(BinIo, RejectsBadMagic) {
    std::stringstream buf;
    buf << "NOPE garbage";
    EXPECT_THROW(read_binary(buf), ParseError);
}

TEST(BinIo, RejectsTruncation) {
    const Coo original = gen::make_spd(gen::poisson2d(8, 8));
    std::stringstream buf;
    write_binary(buf, original);
    const std::string full = buf.str();
    for (std::size_t cut : {4UL, 15UL, 24UL, full.size() - 3}) {
        std::stringstream truncated(full.substr(0, cut));
        EXPECT_THROW(read_binary(truncated), ParseError) << "cut at " << cut;
    }
}

TEST(BinIo, RejectsValueByteCorruption) {
    // A flipped bit inside a value field is structurally invisible (bounds
    // and ordering still hold); only the SMX2 trailing checksum catches it.
    const Coo original = gen::make_spd(gen::poisson2d(8, 8));
    std::stringstream buf;
    write_binary(buf, original);
    std::string corrupt = buf.str();
    ASSERT_GT(corrupt.size(), 20u);
    corrupt[corrupt.size() - 12] ^= 0x01;  // inside the last triplet's value
    std::stringstream in(corrupt);
    EXPECT_THROW(read_binary(in), ParseError);
}

TEST(BinIo, RejectsOutOfBoundsEntries) {
    // Handcraft a header claiming 2x2 with an entry at row 5.  Bounds are
    // checked while streaming, before the trailing checksum is even read, so
    // the handcrafted stream needs no valid checksum.
    std::stringstream buf;
    buf.write("SMX2", 4);
    const std::uint32_t flags = 0;
    const std::int32_t rows = 2;
    const std::int32_t cols = 2;
    const std::int64_t nnz = 1;
    buf.write(reinterpret_cast<const char*>(&flags), 4);
    buf.write(reinterpret_cast<const char*>(&rows), 4);
    buf.write(reinterpret_cast<const char*>(&cols), 4);
    buf.write(reinterpret_cast<const char*>(&nnz), 8);
    const index_t r = 5;
    const index_t c = 0;
    const value_t v = 1.0;
    buf.write(reinterpret_cast<const char*>(&r), 4);
    buf.write(reinterpret_cast<const char*>(&c), 4);
    buf.write(reinterpret_cast<const char*>(&v), 8);
    EXPECT_THROW(read_binary(buf), ParseError);
}

TEST(BinIo, FileRoundTrip) {
    const Coo original = gen::make_spd(gen::poisson2d(10, 10));
    const std::string path = "/tmp/symspmv_binio_test.smx";
    write_binary_file(path, original);
    const Coo loaded = read_binary_file(path);
    EXPECT_EQ(loaded.nnz(), original.nnz());
    EXPECT_THROW(read_binary_file("/tmp/definitely_missing_42.smx"), ParseError);
}

TEST(BinIo, AtomicOverwriteReplacesAndLeavesNoTempFiles) {
    const auto dir = std::filesystem::temp_directory_path() / "symspmv_binio_atomic";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "matrix.smx").string();

    write_binary_file(path, gen::make_spd(gen::poisson2d(6, 6)));
    const Coo second = gen::make_spd(gen::poisson2d(9, 9));
    write_binary_file(path, second);  // overwrite in place

    const Coo loaded = read_binary_file(path);
    EXPECT_EQ(loaded.rows(), second.rows());
    EXPECT_EQ(loaded.nnz(), second.nnz());
    // temp-and-rename must not leave intermediate files behind
    std::size_t files = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
        ++files;
        EXPECT_EQ(e.path().string().find(".tmp"), std::string::npos) << e.path();
    }
    EXPECT_EQ(files, 1u);
}

TEST(BinIo, AtomicWriteFailureLeavesNothingBehind) {
    // Unwritable destination: the write throws and the temp file is cleaned
    // up, so there is neither a partial target nor a stray temp.
    const std::string path = "/tmp/symspmv_no_such_dir_9321/matrix.smx";
    const Coo m = gen::make_spd(gen::poisson2d(4, 4));
    EXPECT_THROW(write_binary_file(path, m), InternalError);
    EXPECT_FALSE(std::filesystem::exists("/tmp/symspmv_no_such_dir_9321"));
}

TEST(AtomicFile, WriterExceptionPropagatesAndCleansUp) {
    const auto dir = std::filesystem::temp_directory_path() / "symspmv_atomic_throw";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "out.txt").string();
    EXPECT_THROW(
        write_file_atomic(path, [](std::ostream&) { throw ParseError("boom"); }),
        ParseError);
    EXPECT_TRUE(std::filesystem::is_empty(dir)) << "no temp, no target after failure";
}

}  // namespace
}  // namespace symspmv
