// Tests for the CSX / CSX-Sym SpmvKernel adapters and the kernel registry.
#include <gtest/gtest.h>

#include "test_util.hpp"

#include <random>

#include "engine/registry.hpp"
#include "csx/kernels.hpp"
#include "matrix/csr.hpp"
#include "matrix/generators.hpp"
#include "matrix/suite.hpp"

namespace symspmv {
namespace {

using symspmv::test::random_vector;

TEST(CsxKernels, CsxMtMatchesCsr) {
    const Coo m = gen::banded_random(400, 50, 8.0, 3, 0.2);
    ThreadPool pool(4);
    csx::CsxMtKernel kernel(Csr(m), csx::CsxConfig{}, pool);
    const auto x = random_vector(400, 8);
    std::vector<value_t> y(400), y_ref(400);
    Csr(m).spmv(x, y_ref);
    kernel.spmv(x, y);
    for (int i = 0; i < 400; ++i) ASSERT_NEAR(y[i], y_ref[i], 1e-12);
    EXPECT_EQ(kernel.name(), "CSX");
    EXPECT_EQ(kernel.nnz(), m.nnz());
}

TEST(CsxKernels, CsxSymMatchesCsrAcrossThreadCounts) {
    const Coo m = gen::banded_random(513, 120, 12.0, 7, 0.3);
    const Csr csr(m);
    const auto x = random_vector(513, 12);
    std::vector<value_t> y_ref(513);
    csr.spmv(x, y_ref);
    for (int threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        csx::CsxSymKernel kernel(Sss(m), csx::CsxConfig{}, pool);
        std::vector<value_t> y(513);
        kernel.spmv(x, y);
        for (int i = 0; i < 513; ++i) {
            ASSERT_NEAR(y[i], y_ref[i], 1e-11) << "threads=" << threads;
        }
    }
}

TEST(CsxKernels, CsxSymRepeatedCallsStayCorrect) {
    const Coo m = gen::block_fem(50, 3, 6.0, 0.2, 19);
    const Csr csr(m);
    ThreadPool pool(4);
    csx::CsxSymKernel kernel(Sss(m), csx::CsxConfig{}, pool);
    const auto n = static_cast<std::size_t>(m.rows());
    auto x = random_vector(n, 14);
    std::vector<value_t> y(n);
    for (int iter = 0; iter < 5; ++iter) {
        kernel.spmv(x, y);
        std::vector<value_t> y_ref(n);
        csr.spmv(x, y_ref);
        for (std::size_t i = 0; i < n; ++i) {
            // Iterated products grow like ||A||^k, so tolerance is relative.
            ASSERT_NEAR(y[i], y_ref[i], 1e-12 * std::max(1.0, std::abs(y_ref[i]))) << iter;
        }
        x.swap(y);
    }
}

TEST(CsxKernels, FootprintIncludesReductionStructures) {
    const Coo m = gen::banded_random(600, 100, 10.0, 9, 0.4);
    ThreadPool pool(4);
    csx::CsxSymKernel kernel(Sss(m), csx::CsxConfig{}, pool);
    EXPECT_GE(kernel.footprint_bytes(),
              kernel.matrix().size_bytes() + kernel.reduction_index().bytes());
}

TEST(Registry, KindNamesRoundTrip) {
    for (KernelKind kind : all_kernel_kinds()) {
        EXPECT_EQ(parse_kernel_kind(to_string(kind)), kind);
    }
    EXPECT_THROW((void)parse_kernel_kind("bogus"), InvalidArgument);
}

TEST(Registry, FigureKindsAreTheFourOfTheEvaluation) {
    const auto& kinds = figure_kernel_kinds();
    ASSERT_EQ(kinds.size(), 4u);
    EXPECT_EQ(to_string(kinds[0]), "CSR");
    EXPECT_EQ(to_string(kinds[1]), "CSX");
    EXPECT_EQ(to_string(kinds[2]), "SSS-idx");
    EXPECT_EQ(to_string(kinds[3]), "CSX-Sym");
}

TEST(Registry, AllKernelsAgreeOnARandomMatrix) {
    const Coo m = gen::banded_random(350, 70, 9.0, 29, 0.3);
    ThreadPool pool(3);
    const auto x = random_vector(350, 17);
    std::vector<value_t> y_ref(350);
    Csr(m).spmv(x, y_ref);
    for (KernelKind kind : all_kernel_kinds()) {
        const KernelPtr kernel = make_kernel(kind, m, pool);
        ASSERT_EQ(kernel->rows(), 350);
        EXPECT_EQ(kernel->nnz(), m.nnz()) << to_string(kind);
        EXPECT_EQ(kernel->flops(), 2 * static_cast<std::int64_t>(m.nnz()));
        std::vector<value_t> y(350);
        kernel->spmv(x, y);
        for (int i = 0; i < 350; ++i) {
            ASSERT_NEAR(y[i], y_ref[i], 1e-11) << to_string(kind) << " row " << i;
        }
    }
}

class RegistryOnSuite : public ::testing::TestWithParam<const char*> {};

TEST_P(RegistryOnSuite, AllKernelsAgree) {
    const Coo m = gen::generate_suite_matrix(GetParam(), 0.003);
    ThreadPool pool(4);
    const auto n = static_cast<std::size_t>(m.rows());
    const auto x = random_vector(n, 23);
    std::vector<value_t> y_ref(n);
    Csr(m).spmv(x, y_ref);
    for (KernelKind kind : figure_kernel_kinds()) {
        const KernelPtr kernel = make_kernel(kind, m, pool);
        std::vector<value_t> y(n);
        kernel->spmv(x, y);
        double max_err = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            max_err = std::max(max_err, std::abs(y[i] - y_ref[i]));
        }
        EXPECT_LT(max_err, 1e-9) << to_string(kind) << " on " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, RegistryOnSuite,
                         ::testing::Values("parabolic_fem", "offshore", "consph", "G3_circuit",
                                           "bmw7st_1", "nd12k"));

}  // namespace
}  // namespace symspmv
