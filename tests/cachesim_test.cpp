// Tests for the cache model and the §V.B interference experiment.
#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "cachesim/spmv_trace.hpp"
#include "matrix/generators.hpp"

namespace symspmv::cachesim {
namespace {

TEST(Cache, MissesThenHitsOnRepeatedAccess) {
    Cache cache({1024, 64, 2});
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(63));   // same line
    EXPECT_FALSE(cache.access(64));  // next line
    EXPECT_EQ(cache.misses(), 2);
    EXPECT_EQ(cache.hits(), 2);
}

TEST(Cache, LruEvictionWithinASet) {
    // 2-way, 8 sets of 64-byte lines: addresses k*512 all map to set 0.
    Cache cache({1024, 64, 2});
    EXPECT_FALSE(cache.access(0));
    EXPECT_FALSE(cache.access(512));
    EXPECT_TRUE(cache.access(0));      // still resident
    EXPECT_FALSE(cache.access(1024));  // evicts LRU = 512
    EXPECT_TRUE(cache.access(0));
    EXPECT_FALSE(cache.access(512));   // was evicted
}

TEST(Cache, FullyAssociativeKeepsWorkingSet) {
    Cache cache({512, 64, 8});  // one set, 8 ways
    for (addr_t a = 0; a < 8; ++a) EXPECT_FALSE(cache.access(a * 64));
    for (addr_t a = 0; a < 8; ++a) EXPECT_TRUE(cache.access(a * 64));
    EXPECT_FALSE(cache.access(8 * 64));  // evicts line 0 (LRU)
    EXPECT_FALSE(cache.access(0));
}

TEST(Cache, AccessRangeCountsEveryLineOnce) {
    Cache cache({4096, 64, 4});
    const std::int64_t range_hits = cache.access_range(0, 640);  // 10 lines
    EXPECT_EQ(range_hits, 0);
    EXPECT_EQ(cache.misses(), 10);
    EXPECT_EQ(cache.access_range(0, 640), 10);
}

TEST(Cache, FlushEmptiesContents) {
    Cache cache({1024, 64, 2});
    cache.access(0);
    cache.flush();
    EXPECT_EQ(cache.accesses(), 0);
    EXPECT_FALSE(cache.access(0));
}

TEST(Cache, PresetsMatchTableII) {
    EXPECT_EQ(dunnington_l2().size_bytes, 3u * 1024 * 1024);
    EXPECT_EQ(gainestown_l2().size_bytes, 256u * 1024);
    EXPECT_EQ(dunnington_l3().size_bytes, 16u * 1024 * 1024);
    EXPECT_EQ(gainestown_l3().size_bytes, 8u * 1024 * 1024);
}

TEST(Cache, RejectsBadGeometry) {
    EXPECT_ANY_THROW(Cache({1000, 48, 2}));  // non-power-of-two line
    EXPECT_ANY_THROW(Cache({1000, 64, 3}));  // size not multiple of ways*line
}

class Interference : public ::testing::TestWithParam<ReductionMethod> {};

TEST_P(Interference, ColdMultiplyMissesAreMethodIndependent) {
    const Sss sss(gen::make_spd(gen::banded_random(2000, 80, 8.0, 3, 0.2)));
    const auto parts = split_by_nnz(sss.rowptr(), 8);
    const SpmvTrace trace(sss, parts);
    Cache a(gainestown_l2());
    Cache b(gainestown_l2());
    const auto r = trace.run_interference(a, GetParam());
    const auto idx = trace.run_interference(b, ReductionMethod::kIndexing);
    EXPECT_EQ(r.first_multiply, idx.first_multiply)
        << "the first multiply touches the same lines regardless of method";
}

TEST_P(Interference, SecondMultiplyNeverMissesMoreThanCold) {
    const Sss sss(gen::make_spd(gen::banded_random(1500, 60, 7.0, 5, 0.3)));
    const auto parts = split_by_nnz(sss.rowptr(), 8);
    const SpmvTrace trace(sss, parts);
    Cache cache(gainestown_l3());
    const auto r = trace.run_interference(cache, GetParam());
    EXPECT_LE(r.second_multiply, r.first_multiply);
}

INSTANTIATE_TEST_SUITE_P(Methods, Interference,
                         ::testing::Values(ReductionMethod::kNaive,
                                           ReductionMethod::kEffectiveRanges,
                                           ReductionMethod::kIndexing),
                         [](const auto& info) { return std::string(to_string(info.param)).substr(4); });

TEST(Interference, IndexingReductionTouchesFewestLines) {
    const Sss sss(gen::make_spd(gen::banded_random(3000, 100, 8.0, 7, 0.25)));
    const auto parts = split_by_nnz(sss.rowptr(), 16);
    const SpmvTrace trace(sss, parts);
    Cache c1(gainestown_l2());
    Cache c2(gainestown_l2());
    Cache c3(gainestown_l2());
    const auto naive = trace.run_interference(c1, ReductionMethod::kNaive);
    const auto eff = trace.run_interference(c2, ReductionMethod::kEffectiveRanges);
    const auto idx = trace.run_interference(c3, ReductionMethod::kIndexing);
    EXPECT_LT(eff.reduction, naive.reduction);
    EXPECT_LT(idx.reduction, eff.reduction);
}

TEST(Interference, IndexingPreservesTheNextMultiplyWorkingSet) {
    // The §V.B claim, on a cache big enough to hold the multiply working
    // set (~1.8 MiB here) but not the naive reduction traffic (16 full
    // local vectors ~ 2.6 MiB on top).
    const Sss sss(gen::make_spd(gen::banded_random(20'000, 300, 10.0, 9, 0.2)));
    const auto parts = split_by_nnz(sss.rowptr(), 16);
    const SpmvTrace trace(sss, parts);
    Cache c1(dunnington_l2());
    Cache c3(dunnington_l2());
    const auto naive = trace.run_interference(c1, ReductionMethod::kNaive);
    const auto idx = trace.run_interference(c3, ReductionMethod::kIndexing);
    EXPECT_LT(idx.second_multiply, naive.second_multiply)
        << "indexed reduction must pollute the cache less than naive";
}

}  // namespace
}  // namespace symspmv::cachesim
